open Traces
module VC = Vclock.Vector_clock
module VT = Vclock.Vtime

type t = { timestamps : VT.t array; dim : int }

let compute tr =
  let dim = max (Trace.threads tr) 1 in
  let c = Array.init dim (fun _ -> VC.bottom dim) in
  let l = Array.init (Trace.locks tr) (fun _ -> VC.bottom dim) in
  let w = Array.init (Trace.vars tr) (fun _ -> VC.bottom dim) in
  (* reads since the last write; earlier reads are ordered transitively
     through that write *)
  let r = Array.init (Trace.vars tr) (fun _ -> VC.bottom dim) in
  let timestamps = Array.make (Trace.length tr) (VT.bottom dim) in
  Trace.iteri
    (fun i (e : Event.t) ->
      let t = Ids.Tid.to_int e.thread in
      (* order after conflicting predecessors *)
      (match e.op with
      | Event.Read x -> VC.join_into ~into:c.(t) w.(Ids.Vid.to_int x)
      | Event.Write x ->
        let x = Ids.Vid.to_int x in
        VC.join_into ~into:c.(t) w.(x);
        VC.join_into ~into:c.(t) r.(x)
      | Event.Acquire lk -> VC.join_into ~into:c.(t) l.(Ids.Lid.to_int lk)
      | Event.Join u -> VC.join_into ~into:c.(t) c.(Ids.Tid.to_int u)
      | Event.Release _ | Event.Fork _ | Event.Begin | Event.End -> ());
      (* the event gets a fresh local tick *)
      VC.bump c.(t) t;
      timestamps.(i) <- VT.of_clock c.(t);
      (* make this event a predecessor of later conflicting ones *)
      match e.op with
      | Event.Read x -> VC.join_into ~into:r.(Ids.Vid.to_int x) c.(t)
      | Event.Write x ->
        let x = Ids.Vid.to_int x in
        VC.assign ~into:w.(x) c.(t);
        VC.reset r.(x)
      | Event.Release lk -> VC.assign ~into:l.(Ids.Lid.to_int lk) c.(t)
      | Event.Fork u -> VC.join_into ~into:c.(Ids.Tid.to_int u) c.(t)
      | Event.Acquire _ | Event.Join _ | Event.Begin | Event.End -> ())
    tr;
  { timestamps; dim }

let timestamp chb i = chb.timestamps.(i)

let happens_before chb i j = VT.leq chb.timestamps.(i) chb.timestamps.(j)

let concurrent chb i j = not (happens_before chb i j || happens_before chb j i)

(* The transaction graph induced by ≤CHB: an edge A -> B iff some event of
   A happens-before some event of B, A ≠ B.  Because ≤CHB is the
   transitive closure of pairwise conflicts, reachability in the
   pairwise-conflict graph and in this graph coincide; we build it from
   the timestamps to stay independent of Velodrome.Reference. *)
let txn_graph chb tr =
  let owners = Transactions.owner tr in
  let g = Digraphs.Digraph.create () in
  Array.iter (Digraphs.Digraph.add_node g) owners;
  let n = Trace.length tr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if owners.(i) <> owners.(j) && happens_before chb i j then
        ignore (Digraphs.Digraph.add_edge g owners.(i) owners.(j))
    done
  done;
  (g, owners)

(* Reachability-by-a-path-of-length->=1 between transactions, as a closure
   table: one BFS per node over its successors. *)
let reach_closure g =
  let table = Hashtbl.create 64 in
  Digraphs.Digraph.iter_nodes
    (fun src ->
      let seen = Hashtbl.create 16 in
      let stack = ref (Digraphs.Digraph.succs g src) in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | n :: rest ->
          stack := rest;
          if not (Hashtbl.mem seen n) then begin
            Hashtbl.replace seen n ();
            stack := Digraphs.Digraph.succs g n @ !stack
          end
      done;
      Hashtbl.replace table src seen)
    g;
  table

let reaches_plus table a b =
  match Hashtbl.find_opt table a with
  | Some seen -> Hashtbl.mem seen b
  | None -> false

let path_through_transactions chb tr i j =
  let g, owners = txn_graph chb tr in
  let closure = reach_closure g in
  reaches_plus closure owners.(i) owners.(j)

let first_path_witness chb tr =
  let g, owners = txn_graph chb tr in
  let closure = reach_closure g in
  let n = Trace.length tr in
  let best = ref None in
  (* Prefer a cross-transaction witness (e ∉ txn(f)), which is the
     informative Theorem 2 shape; fall back to a same-transaction pair
     (a cycle returning to the starting transaction). *)
  (try
     for i = 0 to n - 1 do
       for j = 0 to n - 1 do
         if happens_before chb j i && reaches_plus closure owners.(i) owners.(j)
         then
           if owners.(i) <> owners.(j) then begin
             best := Some (i, j);
             raise Exit
           end
           else if !best = None then best := Some (i, j)
       done
     done
   with Exit -> ());
  !best
