(** The conflict-happens-before relation [≤CHB] (Section 2).

    [≤CHB] is the smallest reflexive, transitive relation ordering every
    conflicting pair of events by their trace positions.  This module
    computes, in one linear vector-clock pass, a timestamp for every event
    such that [e ≤CHB e'] iff the timestamps are pointwise ordered — the
    standard happens-before construction, with the paper's conflict edges
    (program order, fork/join, write–write / write–read / read–write on a
    location, release–acquire on a lock).

    Unlike the checkers, this module stores one timestamp per event
    ([O(n·|Thr|)] memory), so it is an offline analysis tool: it backs the
    tests that reproduce the paper's Examples 1–4 and the
    {!path_through_transactions} characterization of Section 3, and it is
    useful for explaining a violation after one is found. *)

open Traces

type t

val compute : Trace.t -> t
(** One pass over the trace. *)

val timestamp : t -> int -> Vclock.Vtime.t
(** The CHB timestamp of the event at the given trace index. *)

val happens_before : t -> int -> int -> bool
(** [happens_before chb i j] is [e_i ≤CHB e_j].  Reflexive.  For [i < j]
    this is timestamp ordering; events later in the trace never
    happen-before earlier ones. *)

val concurrent : t -> int -> int -> bool
(** Neither ordered before the other. *)

val path_through_transactions : t -> Trace.t -> int -> int -> bool
(** [path_through_transactions chb tr i j] is the relation [e_i →* e_j] of
    Section 3: a sequence of pairs [(e_1,f_1) … (e_k,f_k)], [k > 1], with
    [e_i = e_1], [e_j = f_k], each [e_l], [f_l] in the same transaction,
    consecutive transactions distinct, and [f_l ≤CHB e_{l+1}].  Computed by
    a fixpoint over transactions; quadratic, intended for small traces and
    tests. *)

val first_path_witness : t -> Trace.t -> (int * int) option
(** Some pair [(i, j)] with [e_i →* e_j] and [e_j ≤CHB e_i] — the
    Proposition 1 witness that the trace is not conflict serializable —
    or [None] if no such pair exists.  Quadratic; test/teaching use. *)
