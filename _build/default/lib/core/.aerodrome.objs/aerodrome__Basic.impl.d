lib/core/basic.ml: Array Event Ids Traces Vclock Violation
