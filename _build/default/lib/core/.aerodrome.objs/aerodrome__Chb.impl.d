lib/core/chb.ml: Array Digraphs Event Hashtbl Ids Trace Traces Transactions Vclock
