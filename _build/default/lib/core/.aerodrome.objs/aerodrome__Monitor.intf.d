lib/core/monitor.mli: Checker Event Format Seq Trace Traces Violation
