lib/core/violation.ml: Event Format Ids Traces
