lib/core/chb.mli: Trace Traces Vclock
