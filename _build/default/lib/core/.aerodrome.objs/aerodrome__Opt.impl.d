lib/core/opt.ml: Array Bytes Checker Event Ids List Traces Vclock Violation
