lib/core/violation.mli: Event Format Ids Traces
