lib/core/reduced.ml: Array Event Ids Traces Vclock Violation
