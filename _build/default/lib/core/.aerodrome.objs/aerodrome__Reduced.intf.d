lib/core/reduced.mli: Checker Vclock
