lib/core/opt.mli: Checker Vclock
