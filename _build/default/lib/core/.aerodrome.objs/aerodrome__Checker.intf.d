lib/core/checker.mli: Event Seq Trace Traces Violation
