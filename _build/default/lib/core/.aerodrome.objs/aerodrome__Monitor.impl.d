lib/core/monitor.ml: Array Checker Event Format Ids List Opt Option Printf Seq Trace Traces Violation
