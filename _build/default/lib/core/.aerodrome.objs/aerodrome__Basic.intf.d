lib/core/basic.mli: Checker Vclock
