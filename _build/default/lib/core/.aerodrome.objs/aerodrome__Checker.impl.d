lib/core/checker.ml: Event Option Seq Trace Traces Violation
