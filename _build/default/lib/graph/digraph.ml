type adj = { succs : (int, unit) Hashtbl.t; preds : (int, unit) Hashtbl.t }

type t = { nodes : (int, adj) Hashtbl.t; mutable edges : int }

let create ?(initial_capacity = 64) () =
  { nodes = Hashtbl.create initial_capacity; edges = 0 }

let add_node g n =
  if n < 0 then invalid_arg "Digraph.add_node: negative node";
  if not (Hashtbl.mem g.nodes n) then
    Hashtbl.add g.nodes n { succs = Hashtbl.create 4; preds = Hashtbl.create 4 }

let mem_node g n = Hashtbl.mem g.nodes n

let adj g n = Hashtbl.find_opt g.nodes n

let remove_node g n =
  match adj g n with
  | None -> ()
  | Some a ->
    (* Count incident edges before mutating the adjacency sets; a
       self-loop appears in both succs and preds but is a single edge. *)
    let removed =
      Hashtbl.length a.succs + Hashtbl.length a.preds
      - (if Hashtbl.mem a.succs n then 1 else 0)
    in
    Hashtbl.iter
      (fun v () ->
        match adj g v with
        | Some av -> Hashtbl.remove av.preds n
        | None -> ())
      a.succs;
    Hashtbl.iter
      (fun u () ->
        match adj g u with
        | Some au -> Hashtbl.remove au.succs n
        | None -> ())
      a.preds;
    g.edges <- g.edges - removed;
    Hashtbl.remove g.nodes n

let mem_edge g u v =
  match adj g u with None -> false | Some a -> Hashtbl.mem a.succs v

let add_edge g u v =
  add_node g u;
  add_node g v;
  if mem_edge g u v then false
  else begin
    let au = Hashtbl.find g.nodes u and av = Hashtbl.find g.nodes v in
    Hashtbl.add au.succs v ();
    Hashtbl.add av.preds u ();
    g.edges <- g.edges + 1;
    true
  end

let remove_edge g u v =
  if mem_edge g u v then begin
    let au = Hashtbl.find g.nodes u and av = Hashtbl.find g.nodes v in
    Hashtbl.remove au.succs v;
    Hashtbl.remove av.preds u;
    g.edges <- g.edges - 1
  end

let num_nodes g = Hashtbl.length g.nodes
let num_edges g = g.edges

let keys tbl = Hashtbl.fold (fun k () acc -> k :: acc) tbl []

let succs g n = match adj g n with None -> [] | Some a -> keys a.succs
let preds g n = match adj g n with None -> [] | Some a -> keys a.preds

let out_degree g n = match adj g n with None -> 0 | Some a -> Hashtbl.length a.succs
let in_degree g n = match adj g n with None -> 0 | Some a -> Hashtbl.length a.preds

let nodes g = Hashtbl.fold (fun n _ acc -> n :: acc) g.nodes []
let iter_nodes f g = Hashtbl.iter (fun n _ -> f n) g.nodes

let iter_succs f g n =
  match adj g n with None -> () | Some a -> Hashtbl.iter (fun v () -> f v) a.succs

let fold_edges f g init =
  Hashtbl.fold
    (fun u a acc -> Hashtbl.fold (fun v () acc -> f u v acc) a.succs acc)
    g.nodes init

let reaches g src dst =
  if not (mem_node g src && mem_node g dst) then false
  else begin
    let visited = Hashtbl.create 64 in
    (* Explicit stack: Velodrome runs this on graphs with thousands of nodes
       and deep chains, where recursion would overflow. *)
    let stack = ref [ src ] in
    let found = ref false in
    while (not !found) && !stack <> [] do
      match !stack with
      | [] -> ()
      | n :: rest ->
        stack := rest;
        if n = dst then found := true
        else if not (Hashtbl.mem visited n) then begin
          Hashtbl.add visited n ();
          iter_succs (fun v -> stack := v :: !stack) g n
        end
    done;
    !found
  end

let find_path g src dst =
  if not (mem_node g src && mem_node g dst) then None
  else begin
    let parent = Hashtbl.create 64 in
    let stack = ref [ src ] in
    let found = ref (src = dst) in
    Hashtbl.replace parent src src;
    while (not !found) && !stack <> [] do
      match !stack with
      | [] -> ()
      | n :: rest ->
        stack := rest;
        iter_succs
          (fun v ->
            if not (Hashtbl.mem parent v) then begin
              Hashtbl.replace parent v n;
              if v = dst then found := true else stack := v :: !stack
            end)
          g n
    done;
    if not !found then None
    else begin
      let rec build acc v =
        if v = src then src :: acc else build (v :: acc) (Hashtbl.find parent v)
      in
      Some (build [] dst)
    end
  end

let has_cycle_through g n =
  mem_node g n && List.exists (fun v -> reaches g v n) (succs g n)

let copy g =
  let g' = create ~initial_capacity:(num_nodes g) () in
  iter_nodes (fun n -> add_node g' n) g;
  fold_edges (fun u v () -> ignore (add_edge g' u v)) g ();
  g'

let pp ppf g =
  let ns = List.sort Int.compare (nodes g) in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun n ->
      Format.fprintf ppf "%d -> {%a}@," n
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_int)
        (List.sort Int.compare (succs g n)))
    ns;
  Format.fprintf ppf "@]"
