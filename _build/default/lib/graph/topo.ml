let sort g =
  let indeg = Hashtbl.create 64 in
  Digraph.iter_nodes (fun n -> Hashtbl.replace indeg n (Digraph.in_degree g n)) g;
  let queue = Queue.create () in
  Hashtbl.iter (fun n d -> if d = 0 then Queue.add n queue) indeg;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let n = Queue.pop queue in
    incr seen;
    order := n :: !order;
    Digraph.iter_succs
      (fun v ->
        let d = Hashtbl.find indeg v - 1 in
        Hashtbl.replace indeg v d;
        if d = 0 then Queue.add v queue)
      g n
  done;
  if !seen = Digraph.num_nodes g then Some (List.rev !order) else None

let find_cycle g =
  match Scc.nontrivial g with
  | [] -> None
  | comp :: _ ->
    (* Walk inside the component until a node repeats, then cut the walk at
       the first occurrence of that node: the segment in between is a cycle
       entirely within the component. *)
    let in_comp = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace in_comp v ()) comp;
    let start = List.hd comp in
    if Digraph.mem_edge g start start then Some [ start ]
    else begin
      let position = Hashtbl.create 16 in
      let rec walk path len v =
        match Hashtbl.find_opt position v with
        | Some i ->
          (* path is reversed; keep entries with position >= i. *)
          let cycle =
            List.filter (fun w -> Hashtbl.find position w >= i) (List.rev path)
          in
          Some cycle
        | None ->
          Hashtbl.replace position v len;
          let next =
            List.find_opt (fun w -> Hashtbl.mem in_comp w) (Digraph.succs g v)
          in
          (* Inside a nontrivial SCC every node has a successor within the
             component, so [next] cannot be [None]. *)
          (match next with
          | Some w -> walk (v :: path) (len + 1) w
          | None -> None)
      in
      walk [] 0 start
    end
