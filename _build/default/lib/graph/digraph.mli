(** Mutable directed graphs over integer nodes.

    This is the substrate for the Velodrome baseline (the paper's RAPID
    implementation uses JGraphT for the same purpose).  Nodes are arbitrary
    non-negative integers added explicitly; parallel edges are collapsed.
    The representation keeps successor and predecessor adjacency so that
    in-degree queries and node deletion (needed by Velodrome's garbage
    collection) are cheap. *)

type t

val create : ?initial_capacity:int -> unit -> t

val add_node : t -> int -> unit
(** Idempotent. *)

val remove_node : t -> int -> unit
(** Removes the node and all incident edges.  Idempotent. *)

val mem_node : t -> int -> bool

val add_edge : t -> int -> int -> bool
(** [add_edge g u v] adds edge [u -> v], adding missing endpoints, and
    returns [true] iff the edge was not already present.  Self-loops are
    allowed (they are cycles). *)

val mem_edge : t -> int -> int -> bool
val remove_edge : t -> int -> int -> unit

val num_nodes : t -> int
val num_edges : t -> int

val succs : t -> int -> int list
val preds : t -> int -> int list
val out_degree : t -> int -> int
val in_degree : t -> int -> int

val nodes : t -> int list
val iter_nodes : (int -> unit) -> t -> unit
val iter_succs : (int -> unit) -> t -> int -> unit

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val reaches : t -> int -> int -> bool
(** [reaches g u v]: is there a directed path (possibly empty) from [u] to
    [v]?  DFS; [O(nodes + edges)]. *)

val find_path : t -> int -> int -> int list option
(** [find_path g u v] is some directed path [u; ...; v] (as a node list,
    endpoints included; [[u]] when [u = v]), or [None] if [v] is
    unreachable from [u]. *)

val has_cycle_through : t -> int -> bool
(** Is there a directed cycle containing the given node?  Equivalent to a
    path from one of its successors back to it. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
