(* Pearce–Kelly dynamic topological order.

   Nodes are non-negative ints; per-node state lives in growable arrays
   indexed by node id.  [ord] holds the topological position (sparse
   values, comparisons only); [present] marks live nodes; adjacency uses
   hash-set tables like Digraph.  Visited marks use a generation stamp so
   searches need no clearing. *)

type adj = { succs : (int, unit) Hashtbl.t; preds : (int, unit) Hashtbl.t }

type t = {
  mutable adj : adj option array;
  mutable ord : int array;
  mutable stamp : int array;
  mutable parent : int array;  (* DFS parents for witness extraction *)
  mutable next_ord : int;
  mutable generation : int;
  mutable nodes : int;
  mutable edges : int;
}

let create ?(initial_capacity = 64) () =
  let n = max initial_capacity 1 in
  {
    adj = Array.make n None;
    ord = Array.make n 0;
    stamp = Array.make n 0;
    parent = Array.make n (-1);
    next_ord = 0;
    generation = 0;
    nodes = 0;
    edges = 0;
  }

let ensure g n =
  if n >= Array.length g.adj then begin
    let cap = max (n + 1) (2 * Array.length g.adj) in
    let grow a fill =
      let a' = Array.make cap fill in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    in
    g.adj <- grow g.adj None;
    g.ord <- grow g.ord 0;
    g.stamp <- grow g.stamp 0;
    g.parent <- grow g.parent (-1)
  end

let mem_node g n = n >= 0 && n < Array.length g.adj && g.adj.(n) <> None

let add_node g n =
  if n < 0 then invalid_arg "Incremental.add_node: negative node";
  ensure g n;
  if g.adj.(n) = None then begin
    g.adj.(n) <- Some { succs = Hashtbl.create 4; preds = Hashtbl.create 4 };
    g.ord.(n) <- g.next_ord;
    g.next_ord <- g.next_ord + 1;
    g.nodes <- g.nodes + 1
  end

let get_adj g n = match g.adj.(n) with Some a -> a | None -> assert false

let remove_node g n =
  if mem_node g n then begin
    let a = get_adj g n in
    let removed =
      Hashtbl.length a.succs + Hashtbl.length a.preds
      - (if Hashtbl.mem a.succs n then 1 else 0)
    in
    Hashtbl.iter
      (fun v () -> if v <> n then Hashtbl.remove (get_adj g v).preds n)
      a.succs;
    Hashtbl.iter
      (fun u () -> if u <> n then Hashtbl.remove (get_adj g u).succs n)
      a.preds;
    g.adj.(n) <- None;
    g.nodes <- g.nodes - 1;
    g.edges <- g.edges - removed
  end

let mem_edge g u v = mem_node g u && Hashtbl.mem (get_adj g u).succs v

let in_degree g n = if mem_node g n then Hashtbl.length (get_adj g n).preds else 0
let out_degree g n = if mem_node g n then Hashtbl.length (get_adj g n).succs else 0

let succs g n =
  if mem_node g n then Hashtbl.fold (fun k () acc -> k :: acc) (get_adj g n).succs []
  else []

let num_nodes g = g.nodes
let num_edges g = g.edges
let order_index g n = g.ord.(n)

let fresh_generation g =
  g.generation <- g.generation + 1;
  g.generation

let visited g gen n = g.stamp.(n) = gen
let visit g gen n = g.stamp.(n) <- gen

(* Forward DFS from [v] over nodes with ord <= ub; returns the visited set
   (in discovery order) and whether [target] was reached; records parents
   for the witness path. *)
let dfs_forward g gen v ~ub ~target =
  let acc = ref [] in
  let stack = ref [ v ] in
  let reached = ref false in
  visit g gen v;
  g.parent.(v) <- -1;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | n :: rest ->
      stack := rest;
      acc := n :: !acc;
      if n = target then reached := true
      else
        Hashtbl.iter
          (fun w () ->
            if (not (visited g gen w)) && g.ord.(w) <= ub then begin
              visit g gen w;
              g.parent.(w) <- n;
              stack := w :: !stack
            end)
          (get_adj g n).succs
  done;
  (!acc, !reached)

let dfs_backward g gen u ~lb =
  let acc = ref [] in
  let stack = ref [ u ] in
  visit g gen u;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | n :: rest ->
      stack := rest;
      acc := n :: !acc;
      Hashtbl.iter
        (fun w () ->
          if (not (visited g gen w)) && g.ord.(w) >= lb then begin
            visit g gen w;
            stack := w :: !stack
          end)
        (get_adj g n).preds
  done;
  !acc

let witness_path g u =
  (* follow DFS parents from u back to the search root *)
  let rec go acc n = if n = -1 then acc else go (n :: acc) g.parent.(n) in
  go [] u

let add_edge g u v =
  add_node g u;
  add_node g v;
  if u = v then `Cycle [ u ]
  else if mem_edge g u v then `Exists
  else begin
    let lb = g.ord.(v) and ub = g.ord.(u) in
    if lb > ub then begin
      (* respects the order already *)
      Hashtbl.add (get_adj g u).succs v ();
      Hashtbl.add (get_adj g v).preds u ();
      g.edges <- g.edges + 1;
      `Added
    end
    else begin
      (* back (or level) edge: explore the affected region *)
      let gen = fresh_generation g in
      let delta_f, reached = dfs_forward g gen v ~ub ~target:u in
      if reached then `Cycle (witness_path g u)
      else begin
        let gen' = fresh_generation g in
        let delta_b = dfs_backward g gen' u ~lb in
        (* Reorder: the backward region must precede the forward region.
           Pool the order slots of both regions and redistribute. *)
        let by_ord l = List.sort (fun a b -> Int.compare g.ord.(a) g.ord.(b)) l in
        let sequence = by_ord delta_b @ by_ord delta_f in
        let slots =
          List.sort Int.compare (List.map (fun n -> g.ord.(n)) sequence)
        in
        List.iter2 (fun n slot -> g.ord.(n) <- slot) sequence slots;
        Hashtbl.add (get_adj g u).succs v ();
        Hashtbl.add (get_adj g v).preds u ();
        g.edges <- g.edges + 1;
        `Added
      end
    end
  end

let is_valid_order g =
  let ok = ref true in
  Array.iteri
    (fun u a ->
      match a with
      | None -> ()
      | Some a ->
        Hashtbl.iter
          (fun v () -> if g.ord.(u) >= g.ord.(v) then ok := false)
          a.succs)
    g.adj;
  !ok
