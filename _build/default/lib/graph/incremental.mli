(** Incremental cycle detection via dynamic topological ordering
    (Pearce–Kelly, JEA 2006).

    Maintains a topological order of a growing DAG.  Inserting an edge
    that respects the current order is [O(1)]; inserting a back edge
    triggers a localized reordering whose cost is bounded by the size of
    the affected region, and detects a cycle if one would be created.
    Node deletion never invalidates the order.

    This engine exists as a {e stronger baseline} ablation: the paper's
    Velodrome (and ours, {!Velodrome.Online}) re-runs a reachability
    search on every inserted edge, which is what makes it cubic; swapping
    in this engine shows how much of the gap to AeroDrome is due to naive
    cycle checking and how much is inherent in maintaining the transaction
    graph (see the bench's Ablation A and EXPERIMENTS.md). *)

type t

val create : ?initial_capacity:int -> unit -> t

val add_node : t -> int -> unit
(** Idempotent; fresh nodes are appended at the end of the order. *)

val remove_node : t -> int -> unit
(** Removes the node and incident edges; the order of the remaining nodes
    is untouched.  Idempotent. *)

val mem_node : t -> int -> bool

val add_edge : t -> int -> int -> [ `Added | `Exists | `Cycle of int list ]
(** [add_edge g u v] inserts [u -> v].  [`Cycle path] means the edge would
    close a cycle and was {e not} inserted; [path] is [u; v; ...; u]'s
    interior — a node sequence [v; …; u] such that consecutive nodes are
    edges and [u -> v] closes the loop.  Self-loops report
    [`Cycle [u]]. *)

val mem_edge : t -> int -> int -> bool
val in_degree : t -> int -> int
val out_degree : t -> int -> int
val succs : t -> int -> int list
val num_nodes : t -> int
val num_edges : t -> int

val order_index : t -> int -> int
(** The node's current position value in the maintained topological order
    (values are sparse; only comparisons are meaningful). *)

val is_valid_order : t -> bool
(** Every edge goes from a smaller to a larger order value.  For tests. *)
