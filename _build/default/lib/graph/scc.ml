(* Iterative Tarjan: the explicit frame stack stores, per node, the list of
   successors still to examine, so arbitrarily deep graphs are handled
   without native-stack recursion. *)

type state = {
  index : (int, int) Hashtbl.t;
  lowlink : (int, int) Hashtbl.t;
  on_stack : (int, unit) Hashtbl.t;
  mutable stack : int list;
  mutable next_index : int;
  mutable components : int list list;
}

let compute g =
  let st =
    {
      index = Hashtbl.create 64;
      lowlink = Hashtbl.create 64;
      on_stack = Hashtbl.create 64;
      stack = [];
      next_index = 0;
      components = [];
    }
  in
  let visit root =
    (* Frames: (node, remaining successors). *)
    let frames = ref [] in
    let push_node v =
      Hashtbl.replace st.index v st.next_index;
      Hashtbl.replace st.lowlink v st.next_index;
      st.next_index <- st.next_index + 1;
      st.stack <- v :: st.stack;
      Hashtbl.replace st.on_stack v ();
      frames := (v, ref (Digraph.succs g v)) :: !frames
    in
    let pop_component v =
      let rec take acc = function
        | [] -> assert false
        | w :: rest ->
          Hashtbl.remove st.on_stack w;
          if w = v then (w :: acc, rest) else take (w :: acc) rest
      in
      let comp, rest = take [] st.stack in
      st.stack <- rest;
      st.components <- comp :: st.components
    in
    push_node root;
    let rec loop () =
      match !frames with
      | [] -> ()
      | (v, children) :: parent_frames -> (
        match !children with
        | w :: rest ->
          children := rest;
          if not (Hashtbl.mem st.index w) then push_node w
          else if Hashtbl.mem st.on_stack w then
            Hashtbl.replace st.lowlink v
              (min (Hashtbl.find st.lowlink v) (Hashtbl.find st.index w));
          loop ()
        | [] ->
          frames := parent_frames;
          if Hashtbl.find st.lowlink v = Hashtbl.find st.index v then
            pop_component v
          else begin
            match parent_frames with
            | (p, _) :: _ ->
              Hashtbl.replace st.lowlink p
                (min (Hashtbl.find st.lowlink p) (Hashtbl.find st.lowlink v))
            | [] -> ()
          end;
          loop ())
    in
    loop ()
  in
  Digraph.iter_nodes (fun v -> if not (Hashtbl.mem st.index v) then visit v) g;
  st.components

let nontrivial g =
  List.filter
    (function
      | [] -> false
      | [ v ] -> Digraph.mem_edge g v v
      | _ -> true)
    (compute g)

let is_acyclic g = nontrivial g = []
