(** Topological sorting and cycle extraction. *)

val sort : Digraph.t -> int list option
(** Kahn's algorithm: a topological order of all nodes, or [None] if the
    graph has a cycle. *)

val find_cycle : Digraph.t -> int list option
(** Some directed cycle as a node list [v0; v1; ...; vk] with edges
    [v0 -> v1 -> ... -> vk -> v0], or [None] if acyclic.  A self-loop is
    returned as the singleton [[v]]. *)
