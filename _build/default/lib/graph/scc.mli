(** Strongly connected components (Tarjan, iterative).

    Used by tests and by the offline reference checker to extract witness
    cycles from a transaction graph; any SCC with more than one node — or a
    self-loop — witnesses a conflict-serializability violation
    (Definition 1). *)

val compute : Digraph.t -> int list list
(** The strongly connected components, each as a list of nodes.  Components
    are returned in topological order of the condensation: a component
    appears before every component it can reach. *)

val nontrivial : Digraph.t -> int list list
(** Components that witness a cycle: size [>= 2], or a single node with a
    self-loop. *)

val is_acyclic : Digraph.t -> bool
