lib/graph/incremental.ml: Array Hashtbl Int List
