lib/graph/incremental.mli:
