lib/graph/digraph.ml: Format Hashtbl Int List
