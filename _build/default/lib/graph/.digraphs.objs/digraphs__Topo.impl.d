lib/graph/topo.ml: Digraph Hashtbl List Queue Scc
