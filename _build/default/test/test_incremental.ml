(* Pearce–Kelly incremental cycle detection. *)

module I = Digraphs.Incremental
module G = Digraphs.Digraph

let check = Alcotest.check

let test_forward_edges () =
  let g = I.create () in
  check Alcotest.bool "added" true (I.add_edge g 0 1 = `Added);
  check Alcotest.bool "added2" true (I.add_edge g 1 2 = `Added);
  check Alcotest.bool "exists" true (I.add_edge g 0 1 = `Exists);
  check Alcotest.int "edges" 2 (I.num_edges g);
  check Alcotest.int "nodes" 3 (I.num_nodes g);
  check Alcotest.bool "order valid" true (I.is_valid_order g)

let test_back_edge_reorder () =
  let g = I.create () in
  (* create nodes in an order that makes 2 -> 0 a back edge *)
  I.add_node g 0;
  I.add_node g 1;
  I.add_node g 2;
  check Alcotest.bool "back edge ok" true (I.add_edge g 2 0 = `Added);
  check Alcotest.bool "reordered" true (I.order_index g 2 < I.order_index g 0);
  check Alcotest.bool "order valid" true (I.is_valid_order g)

let test_cycle_detected () =
  let g = I.create () in
  ignore (I.add_edge g 0 1);
  ignore (I.add_edge g 1 2);
  (match I.add_edge g 2 0 with
  | `Cycle path ->
    check Alcotest.bool "path starts at target" true (List.hd path = 0);
    check Alcotest.bool "path ends at source" true
      (List.nth path (List.length path - 1) = 2);
    (* consecutive path elements are edges *)
    let rec pairs = function
      | a :: (b :: _ as rest) ->
        check Alcotest.bool "edge" true (I.mem_edge g a b);
        pairs rest
      | _ -> ()
    in
    pairs path
  | _ -> Alcotest.fail "expected a cycle");
  (* the offending edge was not inserted *)
  check Alcotest.bool "edge rejected" false (I.mem_edge g 2 0);
  check Alcotest.bool "order still valid" true (I.is_valid_order g)

let test_self_loop () =
  let g = I.create () in
  check Alcotest.bool "self" true (I.add_edge g 3 3 = `Cycle [ 3 ])

let test_remove_node () =
  let g = I.create () in
  ignore (I.add_edge g 0 1);
  ignore (I.add_edge g 1 2);
  I.remove_node g 1;
  check Alcotest.int "nodes" 2 (I.num_nodes g);
  check Alcotest.int "edges" 0 (I.num_edges g);
  check Alcotest.bool "gone" false (I.mem_node g 1);
  (* 2 -> 0 is now allowed: the old path through 1 is gone *)
  check Alcotest.bool "edge after removal" true (I.add_edge g 2 0 = `Added);
  check Alcotest.bool "order valid" true (I.is_valid_order g)

let test_degrees () =
  let g = I.create () in
  ignore (I.add_edge g 0 2);
  ignore (I.add_edge g 1 2);
  check Alcotest.int "in" 2 (I.in_degree g 2);
  check Alcotest.int "out" 1 (I.out_degree g 0);
  check (Alcotest.list Alcotest.int) "succs" [ 2 ] (I.succs g 0)

let test_growth () =
  let g = I.create ~initial_capacity:2 () in
  for i = 0 to 999 do
    ignore (I.add_edge g i (i + 1))
  done;
  check Alcotest.int "nodes" 1001 (I.num_nodes g);
  check Alcotest.bool "long chain cycle" true
    (match I.add_edge g 1000 0 with `Cycle _ -> true | _ -> false)

(* Differential property: on a random edge stream, PK accepts exactly the
   edges whose insertion keeps the DFS-checked graph acyclic, and the
   maintained order stays valid throughout. *)
let prop_matches_dfs =
  QCheck.Test.make ~name:"PK agrees with DFS-checked insertion" ~count:300
    (QCheck.make
       ~print:(fun edges ->
         String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) edges))
       (fun rs ->
         let n = 2 + Random.State.int rs 8 in
         List.init
           (Random.State.int rs 30)
           (fun _ -> (Random.State.int rs n, Random.State.int rs n))))
    (fun edges ->
      let pk = I.create () in
      let dfs = G.create () in
      List.for_all
        (fun (u, v) ->
          let dfs_cycle =
            u = v
            || (G.mem_node dfs u && G.mem_node dfs v && G.reaches dfs v u
               && not (G.mem_edge dfs u v))
          in
          let pk_result = I.add_edge pk u v in
          let agree =
            match pk_result with
            | `Cycle _ -> dfs_cycle
            | `Added ->
              (not dfs_cycle) && G.add_edge dfs u v
            | `Exists -> G.mem_edge dfs u v
          in
          agree && I.is_valid_order pk)
        edges)

let suite =
  ( "incremental",
    [
      Alcotest.test_case "forward edges" `Quick test_forward_edges;
      Alcotest.test_case "back edge reorder" `Quick test_back_edge_reorder;
      Alcotest.test_case "cycle detected" `Quick test_cycle_detected;
      Alcotest.test_case "self loop" `Quick test_self_loop;
      Alcotest.test_case "remove node" `Quick test_remove_node;
      Alcotest.test_case "degrees" `Quick test_degrees;
      Alcotest.test_case "growth" `Quick test_growth;
    ]
    @ Helpers.qcheck_tests [ prop_matches_dfs ] )
