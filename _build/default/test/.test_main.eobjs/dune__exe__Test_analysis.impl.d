test/test_analysis.ml: Aerodrome Alcotest Analysis Buffer Event Format Helpers List QCheck String Trace Traces Transactions Unix Workloads
