test/test_monitor.ml: Aerodrome Alcotest Analysis Event Format Helpers QCheck String Trace Traces Velodrome Workloads
