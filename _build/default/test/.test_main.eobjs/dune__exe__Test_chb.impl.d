test/test_chb.ml: Aerodrome Alcotest Array Event Fun Hashtbl Helpers Ids List Option QCheck Trace Traces Transactions Vclock Workloads
