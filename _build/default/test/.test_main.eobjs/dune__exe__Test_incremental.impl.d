test/test_incremental.ml: Alcotest Digraphs Helpers List Printf QCheck Random String
