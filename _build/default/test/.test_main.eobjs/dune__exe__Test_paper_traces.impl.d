test/test_paper_traces.ml: Aerodrome Alcotest Digraphs Helpers Ids List Trace Traces Vclock Velodrome Workloads
