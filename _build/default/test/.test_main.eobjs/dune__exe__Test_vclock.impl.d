test/test_vclock.ml: Alcotest Helpers List QCheck Random Vclock
