test/test_parser.ml: Aerodrome Alcotest Event Filename Fun Helpers Ids List Parser QCheck Sys Trace Traces Workloads
