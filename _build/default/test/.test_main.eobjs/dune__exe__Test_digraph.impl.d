test/test_digraph.ml: Alcotest Array Digraphs Helpers Int List Option Printf QCheck Random String
