test/test_generator.ml: Aerodrome Alcotest Array Helpers List Option Trace Traces Transactions Velodrome Wellformed Workloads
