test/test_checkers.ml: Aerodrome Alcotest Helpers List Option Printf QCheck Trace Traces Workloads
