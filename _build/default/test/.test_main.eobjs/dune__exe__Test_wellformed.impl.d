test/test_wellformed.ml: Alcotest Event Helpers List Printf QCheck Random String Trace Traces Wellformed Workloads
