test/test_velodrome.ml: Aerodrome Alcotest Digraphs Event Helpers List QCheck Trace Traces Velodrome Workloads
