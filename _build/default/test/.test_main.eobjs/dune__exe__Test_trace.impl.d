test/test_trace.ml: Alcotest Array Event Helpers Ids List Printf QCheck Seq Trace Traces Transactions Workloads
