test/test_edge_cases.ml: Aerodrome Alcotest Analysis Event Helpers List Seq Trace Traces Unix Vclock Wellformed Workloads
