test/test_transform.ml: Aerodrome Alcotest Event Hashtbl Helpers Ids List Option QCheck Trace Traces Transactions Transform Wellformed Workloads
