test/test_binfmt.ml: Aerodrome Alcotest Analysis Binfmt Buffer Char Filename Fun Helpers List Parser QCheck Seq String Sys Trace Traces Unix Workloads
