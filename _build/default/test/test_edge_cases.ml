(* Edge cases across the checkers: degenerate domains, deep nesting,
   re-entrant locks, immediate violations, lazy-state introspection. *)

open Traces

let check = Alcotest.check

let test_empty_trace () =
  List.iter
    (fun (name, checker) ->
      check Alcotest.bool name false (Helpers.verdict checker Trace.empty))
    Helpers.online_checkers

let test_single_thread_never_violates () =
  (* one thread alone is always serializable, whatever it does *)
  let tr =
    Trace.of_events
      [
        Event.begin_ 0;
        Event.acquire 0 0;
        Event.write 0 0;
        Event.release 0 0;
        Event.end_ 0;
        Event.read 0 0;
        Event.begin_ 0;
        Event.read 0 0;
        Event.write 0 1;
        Event.end_ 0;
      ]
  in
  List.iter
    (fun (name, checker) ->
      check Alcotest.bool name false (Helpers.verdict checker tr))
    Helpers.online_checkers

let test_zero_domains () =
  (* creating checkers for empty domains must not crash *)
  List.iter
    (fun (_, (module C : Aerodrome.Checker.S)) ->
      let st = C.create ~threads:0 ~locks:0 ~vars:0 in
      check Alcotest.int "no events" 0 (C.processed st))
    Helpers.online_checkers

let test_open_transaction_at_eof () =
  let tr = Trace.of_events [ Event.begin_ 0; Event.write 0 0 ] in
  List.iter
    (fun (name, checker) ->
      check Alcotest.bool name false (Helpers.verdict checker tr))
    Helpers.online_checkers

let test_deep_nesting () =
  (* rho2's violation under 5 levels of nesting on each side *)
  let b = Trace.Builder.create () in
  for _ = 1 to 5 do
    Trace.Builder.begin_ b 0
  done;
  for _ = 1 to 5 do
    Trace.Builder.begin_ b 1
  done;
  Trace.Builder.write b 0 ~var:0;
  Trace.Builder.read b 1 ~var:0;
  Trace.Builder.write b 1 ~var:1;
  Trace.Builder.read b 0 ~var:1;
  for _ = 1 to 5 do
    Trace.Builder.end_ b 0
  done;
  for _ = 1 to 5 do
    Trace.Builder.end_ b 1
  done;
  let tr = Trace.Builder.build b in
  List.iter
    (fun (name, checker) ->
      check Alcotest.bool name true (Helpers.verdict checker tr))
    Helpers.online_checkers

let test_reentrant_locks_in_transactions () =
  (* re-entrant acquires do not confuse the lock clocks *)
  let tr =
    Trace.of_events
      [
        Event.begin_ 0;
        Event.acquire 0 0;
        Event.acquire 0 0;
        Event.write 0 0;
        Event.release 0 0;
        Event.release 0 0;
        Event.end_ 0;
        Event.begin_ 1;
        Event.acquire 1 0;
        Event.read 1 0;
        Event.release 1 0;
        Event.end_ 1;
      ]
  in
  check Alcotest.bool "wellformed" true (Wellformed.is_wellformed tr);
  List.iter
    (fun (name, checker) ->
      check Alcotest.bool name false (Helpers.verdict checker tr))
    Helpers.online_checkers

let test_earliest_possible_violation () =
  (* the violating access is the very first event after the begins *)
  let tr =
    Trace.of_events
      [
        Event.begin_ 0;
        Event.write 0 0;
        Event.begin_ 1;
        Event.read 1 0;
        Event.write 1 0;
        Event.read 0 0;
        Event.end_ 0;
        Event.end_ 1;
      ]
  in
  check Alcotest.bool "violating" true (Helpers.reference_violating tr);
  List.iter
    (fun (name, checker) ->
      check Alcotest.bool name true (Helpers.verdict checker tr))
    Helpers.online_checkers

let test_opt_lazy_state_introspection () =
  let st = Aerodrome.Opt.create ~threads:2 ~locks:0 ~vars:3 in
  (* thread 1 opens a transaction and writes y; thread 0's transaction
     reads y (so it knows thread 1's active begin and will be kept) and
     writes x lazily *)
  ignore (Aerodrome.Opt.feed st (Event.begin_ 1));
  ignore (Aerodrome.Opt.feed st (Event.write 1 1));
  ignore (Aerodrome.Opt.feed st (Event.begin_ 0));
  check Alcotest.bool "in txn" true (Aerodrome.Opt.in_transaction st 0);
  ignore (Aerodrome.Opt.feed st (Event.read 0 1));
  ignore (Aerodrome.Opt.feed st (Event.write 0 0));
  check Alcotest.bool "stale after write in txn" true
    (Aerodrome.Opt.write_is_stale st 0);
  check (Alcotest.option Alcotest.int) "last writer" (Some 0)
    (Aerodrome.Opt.last_writer st 0);
  ignore (Aerodrome.Opt.feed st (Event.end_ 0));
  check Alcotest.bool "materialized at end" false
    (Aerodrome.Opt.write_is_stale st 0);
  check Alcotest.bool "W_x now carries the txn" true
    (Vclock.Vtime.get (Aerodrome.Opt.write_clock st 0) 0 >= 2)

let test_opt_gc_skips_materialization () =
  (* with no other active transaction the completing transaction is
     collected: the lazy W_x is dropped, soundly, rather than
     materialized *)
  let st = Aerodrome.Opt.create ~threads:2 ~locks:0 ~vars:1 in
  ignore (Aerodrome.Opt.feed st (Event.begin_ 0));
  ignore (Aerodrome.Opt.feed st (Event.write 0 0));
  ignore (Aerodrome.Opt.feed st (Event.end_ 0));
  check Alcotest.bool "not stale" false (Aerodrome.Opt.write_is_stale st 0);
  check (Alcotest.option Alcotest.int) "writer forgotten" None
    (Aerodrome.Opt.last_writer st 0);
  check Alcotest.bool "W_x still bottom" true
    (Vclock.Vtime.equal
       (Aerodrome.Opt.write_clock st 0)
       (Vclock.Vtime.bottom 2))

let test_unary_write_not_stale () =
  let st = Aerodrome.Opt.create ~threads:2 ~locks:0 ~vars:1 in
  ignore (Aerodrome.Opt.feed st (Event.write 0 0));
  check Alcotest.bool "eager for unary" false
    (Aerodrome.Opt.write_is_stale st 0)

let test_run_seq_timeout () =
  (* run_seq with an exhausted budget times out mid-stream *)
  let slow =
    Seq.concat_map
      (fun e ->
        ignore (Unix.select [] [] [] 0.0005);
        Seq.return e)
      (Seq.cycle (Trace.to_seq Workloads.Scenarios.rho1))
  in
  let r =
    Analysis.Runner.run_seq ~timeout:0.02 (module Aerodrome.Opt) ~threads:3
      ~locks:0 ~vars:3 slow
  in
  check Alcotest.bool "timed out" true (r.outcome = Analysis.Runner.Timed_out)

let test_fork_into_running_checker () =
  (* forks of threads that then perform no events must not break clocks *)
  let tr = Trace.of_events [ Event.fork 0 1; Event.write 0 0; Event.join 0 1 ] in
  List.iter
    (fun (name, checker) ->
      check Alcotest.bool name false (Helpers.verdict checker tr))
    Helpers.online_checkers

let suite =
  ( "edge-cases",
    [
      Alcotest.test_case "empty trace" `Quick test_empty_trace;
      Alcotest.test_case "single thread" `Quick test_single_thread_never_violates;
      Alcotest.test_case "zero domains" `Quick test_zero_domains;
      Alcotest.test_case "open transaction at eof" `Quick test_open_transaction_at_eof;
      Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
      Alcotest.test_case "re-entrant locks" `Quick test_reentrant_locks_in_transactions;
      Alcotest.test_case "earliest violation" `Quick test_earliest_possible_violation;
      Alcotest.test_case "opt lazy-state introspection" `Quick
        test_opt_lazy_state_introspection;
      Alcotest.test_case "opt gc skips materialization" `Quick
        test_opt_gc_skips_materialization;
      Alcotest.test_case "unary writes eager" `Quick test_unary_write_not_stale;
      Alcotest.test_case "run_seq timeout" `Quick test_run_seq_timeout;
      Alcotest.test_case "fork then nothing" `Quick test_fork_into_running_checker;
    ] )
