(* Directed-graph engine tests. *)

module G = Digraphs.Digraph
module Scc = Digraphs.Scc
module Topo = Digraphs.Topo

let check = Alcotest.check

let of_edges edges =
  let g = G.create () in
  List.iter (fun (u, v) -> ignore (G.add_edge g u v)) edges;
  g

let test_nodes_edges () =
  let g = G.create () in
  G.add_node g 1;
  G.add_node g 1;
  check Alcotest.int "idempotent add" 1 (G.num_nodes g);
  check Alcotest.bool "fresh edge" true (G.add_edge g 1 2);
  check Alcotest.bool "duplicate edge" false (G.add_edge g 1 2);
  check Alcotest.int "edges" 1 (G.num_edges g);
  check Alcotest.int "auto node" 2 (G.num_nodes g);
  check Alcotest.bool "mem" true (G.mem_edge g 1 2);
  check Alcotest.bool "not reverse" false (G.mem_edge g 2 1);
  check Alcotest.int "out" 1 (G.out_degree g 1);
  check Alcotest.int "in" 1 (G.in_degree g 2)

let test_remove_edge () =
  let g = of_edges [ (1, 2); (2, 3) ] in
  G.remove_edge g 1 2;
  check Alcotest.int "edges" 1 (G.num_edges g);
  check Alcotest.bool "gone" false (G.mem_edge g 1 2);
  G.remove_edge g 1 2;
  check Alcotest.int "idempotent" 1 (G.num_edges g)

let test_remove_node () =
  let g = of_edges [ (1, 2); (2, 3); (3, 1); (2, 2) ] in
  G.remove_node g 2;
  check Alcotest.int "nodes" 2 (G.num_nodes g);
  check Alcotest.int "edges" 1 (G.num_edges g);
  check Alcotest.bool "3->1 remains" true (G.mem_edge g 3 1);
  check Alcotest.int "in-degree updated" 0 (G.in_degree g 3);
  G.remove_node g 2;
  check Alcotest.int "idempotent" 2 (G.num_nodes g)

let test_self_loop () =
  let g = of_edges [ (5, 5) ] in
  check Alcotest.int "one edge" 1 (G.num_edges g);
  check Alcotest.bool "cycle through" true (G.has_cycle_through g 5);
  G.remove_node g 5;
  check Alcotest.int "clean removal" 0 (G.num_edges g)

let test_reaches () =
  let g = of_edges [ (1, 2); (2, 3); (3, 4); (10, 11) ] in
  check Alcotest.bool "path" true (G.reaches g 1 4);
  check Alcotest.bool "no back path" false (G.reaches g 4 1);
  check Alcotest.bool "self" true (G.reaches g 2 2);
  check Alcotest.bool "disconnected" false (G.reaches g 1 11);
  check Alcotest.bool "missing node" false (G.reaches g 1 99)

let test_find_path () =
  let g = of_edges [ (1, 2); (2, 3); (1, 3) ] in
  (match G.find_path g 1 3 with
  | Some (1 :: rest) ->
    check Alcotest.int "ends at 3" 3 (List.nth rest (List.length rest - 1))
  | _ -> Alcotest.fail "expected a path");
  check (Alcotest.option (Alcotest.list Alcotest.int)) "self path" (Some [ 2 ])
    (G.find_path g 2 2);
  check (Alcotest.option (Alcotest.list Alcotest.int)) "no path" None
    (G.find_path g 3 1)

let test_deep_graph_no_stack_overflow () =
  let g = G.create () in
  for i = 0 to 99_999 do
    ignore (G.add_edge g i (i + 1))
  done;
  check Alcotest.bool "long chain reachability" true (G.reaches g 0 100_000);
  check Alcotest.int "sccs" 100_001 (List.length (Scc.compute g))

let test_scc_basic () =
  let g = of_edges [ (1, 2); (2, 3); (3, 1); (3, 4); (4, 5); (5, 4) ] in
  let sccs = Scc.compute g in
  let sizes = List.sort compare (List.map List.length sccs) in
  check (Alcotest.list Alcotest.int) "component sizes" [ 2; 3 ] sizes;
  check Alcotest.bool "cyclic" false (Scc.is_acyclic g);
  check Alcotest.int "nontrivial" 2 (List.length (Scc.nontrivial g))

let test_scc_topological_order () =
  let g = of_edges [ (1, 2); (2, 3) ] in
  match Scc.compute g with
  | [ [ 1 ]; [ 2 ]; [ 3 ] ] -> ()
  | other ->
    Alcotest.failf "expected source-first order, got %d components"
      (List.length other)

let test_topo_sort () =
  let g = of_edges [ (1, 2); (1, 3); (2, 4); (3, 4) ] in
  (match Topo.sort g with
  | None -> Alcotest.fail "expected a sort"
  | Some order ->
    let pos n = Option.get (List.find_index (Int.equal n) order) in
    check Alcotest.bool "respects edges" true
      (pos 1 < pos 2 && pos 1 < pos 3 && pos 2 < pos 4 && pos 3 < pos 4));
  ignore (G.add_edge g 4 1);
  check Alcotest.bool "cyclic" true (Topo.sort g = None)

let test_find_cycle () =
  let g = of_edges [ (1, 2); (2, 3); (3, 1); (0, 1) ] in
  match Topo.find_cycle g with
  | None -> Alcotest.fail "expected a cycle"
  | Some cycle ->
    check Alcotest.int "length" 3 (List.length cycle);
    (* each consecutive pair (and the wrap-around) must be an edge *)
    let arr = Array.of_list cycle in
    Array.iteri
      (fun i u ->
        let v = arr.((i + 1) mod Array.length arr) in
        check Alcotest.bool "edge" true (G.mem_edge g u v))
      arr

let test_find_cycle_self_loop () =
  let g = of_edges [ (7, 7) ] in
  check
    (Alcotest.option (Alcotest.list Alcotest.int))
    "self loop" (Some [ 7 ]) (Topo.find_cycle g)

let test_copy () =
  let g = of_edges [ (1, 2) ] in
  let g' = G.copy g in
  ignore (G.add_edge g' 2 1);
  check Alcotest.int "copy isolated" 1 (G.num_edges g);
  check Alcotest.int "copy grew" 2 (G.num_edges g')

(* Random-graph properties. *)

let arb_graph =
  QCheck.make
    ~print:(fun edges ->
      String.concat ";" (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) edges))
    (fun rs ->
      let n = 2 + Random.State.int rs 10 in
      let m = Random.State.int rs 25 in
      List.init m (fun _ -> (Random.State.int rs n, Random.State.int rs n)))

let prop_scc_partition =
  QCheck.Test.make ~name:"SCCs partition the nodes" ~count:200 arb_graph
    (fun edges ->
      let g = of_edges edges in
      let sccs = Scc.compute g in
      let all = List.concat sccs in
      List.length all = G.num_nodes g
      && List.sort_uniq compare all = List.sort compare all)

let prop_acyclic_iff_topo =
  QCheck.Test.make ~name:"acyclic iff topo sort exists" ~count:200 arb_graph
    (fun edges ->
      let g = of_edges edges in
      Scc.is_acyclic g = Option.is_some (Topo.sort g))

let prop_cycle_is_real =
  QCheck.Test.make ~name:"find_cycle returns a genuine cycle" ~count:200
    arb_graph
    (fun edges ->
      let g = of_edges edges in
      match Topo.find_cycle g with
      | None -> Scc.is_acyclic g
      | Some cycle ->
        cycle <> []
        &&
        let arr = Array.of_list cycle in
        Array.for_all (fun x -> x = true)
          (Array.mapi
             (fun i u -> G.mem_edge g u arr.((i + 1) mod Array.length arr))
             arr))

let prop_reaches_transitive =
  QCheck.Test.make ~name:"reachability is transitive" ~count:100 arb_graph
    (fun edges ->
      let g = of_edges edges in
      let nodes = G.nodes g in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              List.for_all
                (fun c ->
                  not (G.reaches g a b && G.reaches g b c) || G.reaches g a c)
                nodes)
            nodes)
        nodes)

let suite =
  ( "digraph",
    [
      Alcotest.test_case "nodes and edges" `Quick test_nodes_edges;
      Alcotest.test_case "remove edge" `Quick test_remove_edge;
      Alcotest.test_case "remove node" `Quick test_remove_node;
      Alcotest.test_case "self loop" `Quick test_self_loop;
      Alcotest.test_case "reaches" `Quick test_reaches;
      Alcotest.test_case "find_path" `Quick test_find_path;
      Alcotest.test_case "deep graph" `Quick test_deep_graph_no_stack_overflow;
      Alcotest.test_case "scc basic" `Quick test_scc_basic;
      Alcotest.test_case "scc order" `Quick test_scc_topological_order;
      Alcotest.test_case "topo sort" `Quick test_topo_sort;
      Alcotest.test_case "find cycle" `Quick test_find_cycle;
      Alcotest.test_case "self-loop cycle" `Quick test_find_cycle_self_loop;
      Alcotest.test_case "copy" `Quick test_copy;
    ]
    @ Helpers.qcheck_tests
        [
          prop_scc_partition;
          prop_acyclic_iff_topo;
          prop_cycle_is_real;
          prop_reaches_transitive;
        ] )
