(* Velodrome-specific behaviour: the transaction graph, garbage collection
   and the witness cycles it reports. *)

open Traces

let check = Alcotest.check

let test_witness_cycle_is_reported () =
  match Aerodrome.Checker.run (module Velodrome.Online) Workloads.Scenarios.rho4 with
  | Some { site = Aerodrome.Violation.Graph_cycle cycle; _ } ->
    check Alcotest.bool "nonempty" true (cycle <> []);
    check Alcotest.int "three transactions" 3 (List.length cycle)
  | Some _ -> Alcotest.fail "expected a graph-cycle witness"
  | None -> Alcotest.fail "expected a violation"

let test_gc_vs_nogc_agree () =
  List.iter
    (fun (name, tr, expected) ->
      let expected = expected = `Violating in
      check Alcotest.bool ("gc/" ^ name) expected
        (Helpers.verdict (module Velodrome.Online) tr);
      check Alcotest.bool ("nogc/" ^ name) expected
        (Helpers.verdict Velodrome.Online.no_gc_checker tr))
    Workloads.Scenarios.all

let run_introspect tr =
  let st = Velodrome.Online.create ~threads:(Trace.threads tr)
      ~locks:(Trace.locks tr) ~vars:(Trace.vars tr) in
  Trace.iter (fun e -> ignore (Velodrome.Online.feed st e)) tr;
  st

let test_unary_chains_collapse () =
  (* A long same-thread run of unary events: GC deletes each node as soon
     as it completes, so the graph never grows. *)
  let tr =
    Trace.of_events (List.init 500 (fun i -> Event.write 0 (i mod 3)))
  in
  let st = run_introspect tr in
  check Alcotest.int "transactions created" 500
    (Velodrome.Online.transactions_created st);
  check Alcotest.bool "graph stays tiny" true (Velodrome.Online.peak_nodes st <= 3);
  check Alcotest.int "graph empty at the end" 0 (Velodrome.Online.live_nodes st)

let test_gc_disabled_retains () =
  let tr =
    Trace.of_events (List.init 100 (fun i -> Event.write 0 (i mod 3)))
  in
  let st =
    Velodrome.Online.create_with ~garbage_collect:false ~threads:1 ~locks:0
      ~vars:3 ()
  in
  Trace.iter (fun e -> ignore (Velodrome.Online.feed st e)) tr;
  check Alcotest.int "all nodes retained" 100 (Velodrome.Online.live_nodes st)

let test_anchored_shape_defeats_gc () =
  (* The anchored workload pins the graph: completed transactions keep an
     incoming edge from a live anchor, so the graph grows with the trace. *)
  let tr =
    Workloads.Generator.generate
      {
        Workloads.Generator.default with
        events = 4_000;
        threads = 6;
        vars = 2_000;
        shape = Workloads.Generator.Anchored;
      }
  in
  let st = run_introspect tr in
  check Alcotest.bool "graph grows into the hundreds" true
    (Velodrome.Online.peak_nodes st > 100)

let test_serial_chain_collapses () =
  (* strict token passing: every completed block's predecessor chain is
     eventually reclaimed, so the graph stays tiny *)
  let st = run_introspect Workloads.Scenarios.serial_chain in
  check Alcotest.bool "chain graph stays small" true
    (Velodrome.Online.peak_nodes st <= 6)

let test_independent_shape_collapses () =
  let tr =
    Workloads.Generator.generate
      { Workloads.Generator.default with events = 4_000; threads = 6; vars = 2_000 }
  in
  let st = run_introspect tr in
  check Alcotest.bool "graph stays small" true
    (Velodrome.Online.peak_nodes st < 64)

let test_edge_counter () =
  (* With GC, T3 is collected before T1 reads z, so the T3 -> T1 edge is
     skipped (a collected transaction cannot be on a cycle); without GC
     both inter-transaction edges are recorded. *)
  let st = run_introspect Workloads.Scenarios.rho1 in
  check Alcotest.int "edges with gc" 1 (Velodrome.Online.edges_added st);
  check Alcotest.int "three block txns" 3 (Velodrome.Online.transactions_created st);
  let st' =
    Velodrome.Online.create_with ~garbage_collect:false ~threads:3 ~locks:0
      ~vars:3 ()
  in
  Trace.iter
    (fun e -> ignore (Velodrome.Online.feed st' e))
    Workloads.Scenarios.rho1;
  check Alcotest.int "edges without gc" 2 (Velodrome.Online.edges_added st')

(* The reference oracle vs a by-hand graph. *)
let test_reference_graph_rho2 () =
  let g = Velodrome.Reference.transaction_graph Workloads.Scenarios.rho2 in
  check Alcotest.int "two nodes" 2 (Digraphs.Digraph.num_nodes g);
  check Alcotest.bool "T0 -> T1" true (Digraphs.Digraph.mem_edge g 0 1);
  check Alcotest.bool "T1 -> T0" true (Digraphs.Digraph.mem_edge g 1 0);
  match Velodrome.Reference.check Workloads.Scenarios.rho2 with
  | Velodrome.Reference.Violation { witness } ->
    check Alcotest.int "witness length" 2 (List.length witness)
  | Velodrome.Reference.Serializable -> Alcotest.fail "expected violation"

let prop_gc_equals_nogc =
  QCheck.Test.make ~name:"garbage collection never changes the verdict"
    ~count:300
    (Helpers.arb_trace ~threads:4 ~locks:2 ~vars:3 ~max_len:70 ~complete:false ())
    (fun tr ->
      Helpers.verdict (module Velodrome.Online) tr
      = Helpers.verdict Velodrome.Online.no_gc_checker tr)

let prop_velodrome_equals_reference_any_trace =
  QCheck.Test.make
    ~name:"online velodrome = offline oracle, even on incomplete traces"
    ~count:300
    (Helpers.arb_trace ~threads:3 ~locks:2 ~vars:3 ~max_len:60 ~complete:false ())
    (fun tr ->
      Helpers.verdict (module Velodrome.Online) tr = Helpers.reference_violating tr)

let suite =
  ( "velodrome",
    [
      Alcotest.test_case "witness cycle" `Quick test_witness_cycle_is_reported;
      Alcotest.test_case "gc/nogc verdicts" `Quick test_gc_vs_nogc_agree;
      Alcotest.test_case "unary chains collapse" `Quick test_unary_chains_collapse;
      Alcotest.test_case "gc disabled retains" `Quick test_gc_disabled_retains;
      Alcotest.test_case "anchored defeats gc" `Quick test_anchored_shape_defeats_gc;
      Alcotest.test_case "independent collapses" `Quick test_independent_shape_collapses;
      Alcotest.test_case "serial chain collapses" `Quick test_serial_chain_collapses;
      Alcotest.test_case "counters" `Quick test_edge_counter;
      Alcotest.test_case "reference graph rho2" `Quick test_reference_graph_rho2;
    ]
    @ Helpers.qcheck_tests
        [ prop_gc_equals_nogc; prop_velodrome_equals_reference_any_trace ] )
