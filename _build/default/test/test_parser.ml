(* Parser / printer tests. *)

open Traces

let check = Alcotest.check

let parse s =
  match Parser.parse_string s with
  | Ok tr -> tr
  | Error e -> Alcotest.failf "unexpected parse error: %a" Parser.pp_error e

let test_basic () =
  let tr = parse "t1|begin\nt1|w(x)\nt2|r(x)\nt1|end\n" in
  check Alcotest.int "events" 4 (Trace.length tr);
  check Alcotest.int "threads" 2 (Trace.threads tr);
  check Alcotest.int "vars" 1 (Trace.vars tr);
  check Alcotest.bool "first is begin" true
    (Event.equal (Trace.get tr 0) (Event.begin_ 0))

let test_all_ops () =
  let tr =
    parse
      "main|fork(w)\nw|begin\nw|acq(l)\nw|r(x)\nw|w(x)\nw|rel(l)\nw|end\nmain|join(w)\n"
  in
  check Alcotest.int "events" 8 (Trace.length tr);
  check Alcotest.int "locks" 1 (Trace.locks tr);
  let kinds =
    Trace.fold
      (fun acc (e : Event.t) ->
        acc
        ^
        match e.op with
        | Event.Fork _ -> "f"
        | Event.Begin -> "b"
        | Event.Acquire _ -> "a"
        | Event.Read _ -> "r"
        | Event.Write _ -> "w"
        | Event.Release _ -> "l"
        | Event.End -> "e"
        | Event.Join _ -> "j")
      "" tr
  in
  check Alcotest.string "order" "fbarwlej" kinds

let test_aliases_and_extras () =
  let tr =
    parse
      "# a comment\n\nt1|read(x)|42\nt1|write(x)|43\nt1|lock(m)\nt1|unlock(m)\nt1|b\nt1|e\n"
  in
  check Alcotest.int "events" 6 (Trace.length tr)

let test_symbols_preserved () =
  let tr = parse "alpha|w(count)\nbeta|r(count)\n" in
  match Trace.symbols tr with
  | None -> Alcotest.fail "expected symbols"
  | Some s ->
    check Alcotest.string "thread name" "alpha" (Trace.Symbols.thread s (Ids.Tid.of_int 0));
    check Alcotest.string "var name" "count" (Trace.Symbols.var s (Ids.Vid.of_int 0))

let test_errors () =
  let expect_err s =
    match Parser.parse_string s with
    | Ok _ -> Alcotest.failf "expected error for %S" s
    | Error e -> e
  in
  let e = expect_err "t1\n" in
  check Alcotest.int "line" 1 e.Parser.line;
  ignore (expect_err "t1|frobnicate(x)\n");
  ignore (expect_err "t1|r(\n");
  ignore (expect_err "t1|r()\n");
  ignore (expect_err "|r(x)\n");
  ignore (expect_err "t 1|r(x)\n")

(* Parsing re-interns ids densely in order of first appearance, so a
   print/parse cycle renames ids; after one such cycle the rendering is a
   fixed point, and the renaming preserves verdicts. *)
let test_roundtrip_scenarios () =
  List.iter
    (fun (name, tr, expected) ->
      let tr' = Parser.parse_string_exn (Parser.to_string tr) in
      Alcotest.check Alcotest.string (name ^ ": printing is a fixed point")
        (Parser.to_string tr') (Parser.to_string (Parser.parse_string_exn (Parser.to_string tr')));
      Alcotest.check Alcotest.int (name ^ ": same length") (Trace.length tr)
        (Trace.length tr');
      Alcotest.check Alcotest.bool (name ^ ": verdict preserved")
        (expected = `Violating)
        (Helpers.verdict (module Aerodrome.Opt) tr'))
    Workloads.Scenarios.all

let test_file_io () =
  let path = Filename.temp_file "aerodrome" ".std" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Parser.to_file path Workloads.Scenarios.rho4;
      let tr = Parser.parse_file_exn path in
      Alcotest.check Alcotest.string "file roundtrip"
        (Parser.to_string Workloads.Scenarios.rho4)
        (Parser.to_string tr))

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse/print is a fixed point" ~count:100
    (Helpers.arb_trace ~threads:4 ~locks:2 ~vars:4 ~max_len:80 ())
    (fun tr ->
      let once = Parser.to_string (Parser.parse_string_exn (Parser.to_string tr)) in
      let twice = Parser.to_string (Parser.parse_string_exn once) in
      once = twice)

let prop_roundtrip_preserves_verdict =
  QCheck.Test.make ~name:"id renaming preserves the verdict" ~count:100
    (Helpers.arb_trace ~threads:4 ~locks:2 ~vars:4 ~max_len:80 ())
    (fun tr ->
      let tr' = Parser.parse_string_exn (Parser.to_string tr) in
      Helpers.verdict (module Aerodrome.Opt) tr
      = Helpers.verdict (module Aerodrome.Opt) tr')

let suite =
  ( "parser",
    [
      Alcotest.test_case "basic" `Quick test_basic;
      Alcotest.test_case "all operations" `Quick test_all_ops;
      Alcotest.test_case "aliases/comments/extras" `Quick test_aliases_and_extras;
      Alcotest.test_case "symbols" `Quick test_symbols_preserved;
      Alcotest.test_case "errors" `Quick test_errors;
      Alcotest.test_case "scenario roundtrips" `Quick test_roundtrip_scenarios;
      Alcotest.test_case "file io" `Quick test_file_io;
    ]
    @ Helpers.qcheck_tests [ prop_roundtrip; prop_roundtrip_preserves_verdict ] )
