(* Workload generator tests: determinism, well-formedness, verdict plans,
   shapes, and the benchmark profiles. *)

open Traces

let check = Alcotest.check

let small cfg = { cfg with Workloads.Generator.events = 1_500; vars = 900 }

let test_deterministic () =
  let cfg = small Workloads.Generator.default in
  let a = Workloads.Generator.generate cfg in
  let b = Workloads.Generator.generate cfg in
  Alcotest.check Helpers.trace_testable "same seed, same trace" a b;
  let c =
    Workloads.Generator.generate { cfg with Workloads.Generator.seed = 99L }
  in
  check Alcotest.bool "different seed, different trace" false
    (Trace.to_list a = Trace.to_list c)

let test_atomic_plans_are_serializable () =
  List.iter
    (fun shape ->
      let cfg =
        {
          (small Workloads.Generator.default) with
          Workloads.Generator.shape;
          threads = 5;
        }
      in
      let tr = Workloads.Generator.generate cfg in
      check Alcotest.bool "oracle agrees" false (Helpers.reference_violating tr);
      check Alcotest.bool "aerodrome agrees" false
        (Helpers.verdict (module Aerodrome.Opt) tr))
    [ Workloads.Generator.Independent; Workloads.Generator.Anchored ]

let test_violate_plans_are_violating () =
  List.iter
    (fun shape ->
      let cfg =
        {
          (small Workloads.Generator.default) with
          Workloads.Generator.shape;
          threads = 5;
          plan = Workloads.Generator.Violate_at 0.5;
        }
      in
      let tr = Workloads.Generator.generate cfg in
      check Alcotest.bool "oracle sees the violation" true
        (Helpers.reference_violating tr);
      check Alcotest.bool "velodrome sees it" true
        (Helpers.verdict (module Velodrome.Online) tr);
      check Alcotest.bool "aerodrome sees it" true
        (Helpers.verdict (module Aerodrome.Opt) tr))
    [ Workloads.Generator.Independent; Workloads.Generator.Anchored ]

let test_violation_position () =
  let cfg =
    {
      (small Workloads.Generator.default) with
      Workloads.Generator.plan = Workloads.Generator.Violate_at 0.5;
      events = 4_000;
      vars = 2_000;
    }
  in
  let tr = Workloads.Generator.generate cfg in
  match Helpers.violation_index (module Velodrome.Online) tr with
  | None -> Alcotest.fail "expected a violation"
  | Some i ->
    let frac = float_of_int i /. float_of_int (Trace.length tr) in
    check Alcotest.bool "within [0.4, 0.9] of the trace" true
      (frac > 0.4 && frac < 0.9)

let test_all_transactions_complete () =
  let tr =
    Workloads.Generator.generate
      (small { Workloads.Generator.default with threads = 6 })
  in
  List.iter
    (fun (t : Transactions.t) ->
      check Alcotest.bool "completed" true t.completed)
    (Transactions.of_trace tr)

let test_event_budget_respected () =
  let cfg = { Workloads.Generator.default with events = 5_000; vars = 2_000 } in
  let tr = Workloads.Generator.generate cfg in
  let n = Trace.length tr in
  check Alcotest.bool "close to target" true (n >= 5_000 && n < 5_600)

let test_validation () =
  let expect_invalid cfg =
    match Workloads.Generator.generate cfg with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid { Workloads.Generator.default with threads = 1 };
  expect_invalid
    { Workloads.Generator.default with shape = Workloads.Generator.Anchored; threads = 3 };
  expect_invalid { Workloads.Generator.default with vars = 4 };
  expect_invalid { Workloads.Generator.default with events = 10 };
  expect_invalid
    { Workloads.Generator.default with plan = Workloads.Generator.Violate_at 1.5 }

let test_scaling_lengths () =
  let pairs =
    Workloads.Generator.scaling
      ~config:(small Workloads.Generator.default)
      [ 200; 400 ]
  in
  match pairs with
  | [ (200, a); (400, b) ] ->
    check Alcotest.bool "ordered lengths" true (Trace.length a < Trace.length b)
  | _ -> Alcotest.fail "expected two sizes"

let test_rng_determinism () =
  let a = Workloads.Rng.create 42L and b = Workloads.Rng.create 42L in
  let xs = List.init 50 (fun _ -> Workloads.Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Workloads.Rng.int b 1000) in
  check (Alcotest.list Alcotest.int) "same stream" xs ys

let test_rng_bounds () =
  let g = Workloads.Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Workloads.Rng.int g 7 in
    check Alcotest.bool "in range" true (v >= 0 && v < 7);
    let r = Workloads.Rng.range g 3 9 in
    check Alcotest.bool "range" true (r >= 3 && r <= 9);
    let f = Workloads.Rng.float g 2.0 in
    check Alcotest.bool "float" true (f >= 0.0 && f < 2.0)
  done;
  check Alcotest.bool "chance extremes" true
    (Workloads.Rng.chance g 1.0 && not (Workloads.Rng.chance g 0.0))

let test_rng_distribution () =
  let g = Workloads.Rng.create 11L in
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    counts.(Workloads.Rng.int g 4) <- counts.(Workloads.Rng.int g 4) + 1
  done;
  Array.iter
    (fun c -> check Alcotest.bool "roughly uniform" true (c > 600 && c < 1400))
    counts

let test_profiles_valid () =
  (* every profile must generate (at small scale) a well-formed trace whose
     verdict matches its plan *)
  List.iter
    (fun (p : Workloads.Profile.t) ->
      let tr = Workloads.Profile.generate ~scale:0.02 p in
      check Alcotest.bool (p.name ^ " wellformed") true
        (Wellformed.is_wellformed tr))
    Workloads.Benchmarks.all

let test_profiles_lookup () =
  check Alcotest.bool "find avrora" true
    (Option.is_some (Workloads.Benchmarks.find "avrora"));
  check Alcotest.bool "find nothing" true
    (Option.is_none (Workloads.Benchmarks.find "nope"));
  check Alcotest.int "table 1 size" 14 (List.length Workloads.Benchmarks.table1);
  check Alcotest.int "table 2 size" 7 (List.length Workloads.Benchmarks.table2)

let test_profile_scaled () =
  match Workloads.Benchmarks.find "philo" with
  | None -> Alcotest.fail "philo missing"
  | Some p ->
    let cfg = Workloads.Profile.scaled p 2.0 in
    check Alcotest.int "double events" (2 * p.config.events)
      cfg.Workloads.Generator.events;
    check Alcotest.bool "expected verdict flag" false
      (Workloads.Profile.expected_violating p)

let suite =
  ( "generator",
    [
      Alcotest.test_case "deterministic" `Quick test_deterministic;
      Alcotest.test_case "atomic plans serializable" `Quick
        test_atomic_plans_are_serializable;
      Alcotest.test_case "violate plans violating" `Quick
        test_violate_plans_are_violating;
      Alcotest.test_case "violation position" `Quick test_violation_position;
      Alcotest.test_case "transactions complete" `Quick
        test_all_transactions_complete;
      Alcotest.test_case "event budget" `Quick test_event_budget_respected;
      Alcotest.test_case "config validation" `Quick test_validation;
      Alcotest.test_case "scaling" `Quick test_scaling_lengths;
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
      Alcotest.test_case "rng distribution" `Quick test_rng_distribution;
      Alcotest.test_case "profiles generate" `Quick test_profiles_valid;
      Alcotest.test_case "profiles lookup" `Quick test_profiles_lookup;
      Alcotest.test_case "profile scaling" `Quick test_profile_scaled;
    ] )
