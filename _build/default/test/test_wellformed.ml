(* Well-formedness checker tests. *)

open Traces

let check = Alcotest.check

let errors ?allow_open_blocks ?allow_held_locks evs =
  Wellformed.check ?allow_open_blocks ?allow_held_locks (Trace.of_events evs)

let count = List.length

let test_clean () =
  List.iter
    (fun (name, tr, _) ->
      check Alcotest.int name 0 (count (Wellformed.check tr)))
    Workloads.Scenarios.all

let test_release_unheld () =
  match errors [ Event.release 0 0 ] with
  | [ Wellformed.Release_unheld { index = 0; _ } ] -> ()
  | es -> Alcotest.failf "unexpected: %d errors" (count es)

let test_release_other_holder () =
  match errors [ Event.acquire 0 0; Event.release 1 0; Event.release 0 0 ] with
  | [ Wellformed.Release_unheld { index = 1; _ } ] -> ()
  | es -> Alcotest.failf "unexpected: %d errors" (count es)

let test_acquire_held () =
  match errors [ Event.acquire 0 0; Event.acquire 1 0 ] with
  | [ Wellformed.Acquire_held_elsewhere { index = 1; _ };
      Wellformed.Unreleased_lock _ ] -> ()
  | es -> Alcotest.failf "unexpected: %d errors" (count es)

let test_reentrant_ok () =
  check Alcotest.int "reentrant" 0
    (count
       (errors
          [ Event.acquire 0 0; Event.acquire 0 0; Event.release 0 0; Event.release 0 0 ]))

let test_unreleased () =
  (match errors [ Event.acquire 0 0 ] with
  | [ Wellformed.Unreleased_lock _ ] -> ()
  | es -> Alcotest.failf "unexpected: %d errors" (count es));
  check Alcotest.int "allowed" 0
    (count (errors ~allow_held_locks:true [ Event.acquire 0 0 ]))

let test_end_without_begin () =
  match errors [ Event.end_ 0 ] with
  | [ Wellformed.End_without_begin { index = 0; _ } ] -> ()
  | es -> Alcotest.failf "unexpected: %d errors" (count es)

let test_open_block_allowed () =
  check Alcotest.int "open ok" 0 (count (errors [ Event.begin_ 0 ]))

let test_fork_errors () =
  (match errors [ Event.fork 0 0 ] with
  | [ Wellformed.Fork_self _ ] -> ()
  | es -> Alcotest.failf "fork self: %d errors" (count es));
  (match errors [ Event.read 1 0; Event.fork 0 1 ] with
  | [ Wellformed.Fork_after_child_event { index = 1; _ } ] -> ()
  | es -> Alcotest.failf "late fork: %d errors" (count es));
  match errors [ Event.fork 0 1; Event.read 1 0; Event.fork 2 1 ] with
  | [ Wellformed.Fork_after_child_event _; Wellformed.Double_fork _ ] -> ()
  | es -> Alcotest.failf "double fork: %d errors" (count es)

let test_join_errors () =
  (match errors [ Event.join 0 0 ] with
  | [ Wellformed.Join_self _ ] -> ()
  | es -> Alcotest.failf "join self: %d errors" (count es));
  match errors [ Event.fork 0 1; Event.join 0 1; Event.read 1 0 ] with
  | [ Wellformed.Join_before_child_end { index = 1; _ } ] -> ()
  | es -> Alcotest.failf "early join: %d errors" (count es)

let test_error_messages () =
  List.iter
    (fun e ->
      check Alcotest.bool "nonempty message" true
        (String.length (Wellformed.error_to_string e) > 0))
    (errors [ Event.release 0 0; Event.end_ 0; Event.fork 1 1; Event.join 2 2 ])

let prop_generator_wellformed =
  QCheck.Test.make ~name:"random complete traces are well-formed" ~count:100
    (Helpers.arb_trace ~threads:4 ~locks:2 ~vars:4 ~max_len:120 ())
    (fun tr -> Wellformed.is_wellformed tr)

let prop_workload_wellformed =
  QCheck.Test.make ~name:"workload generator emits well-formed traces"
    ~count:12
    (QCheck.make
       ~print:(fun (shape, seed, plan) ->
         Printf.sprintf "shape=%s seed=%Ld violate=%b"
           (match shape with
           | Workloads.Generator.Independent -> "independent"
           | Workloads.Generator.Anchored -> "anchored")
           seed plan)
       (fun rs ->
         ( (if Random.State.bool rs then Workloads.Generator.Independent
            else Workloads.Generator.Anchored),
           Random.State.int64 rs 1000L,
           Random.State.bool rs )))
    (fun (shape, seed, violate) ->
      let cfg =
        {
          Workloads.Generator.default with
          shape;
          seed;
          threads = 5;
          events = 2_000;
          vars = 1_200;
          plan =
            (if violate then Workloads.Generator.Violate_at 0.5
             else Workloads.Generator.Atomic);
        }
      in
      Wellformed.is_wellformed (Workloads.Generator.generate cfg))

let suite =
  ( "wellformed",
    [
      Alcotest.test_case "scenarios clean" `Quick test_clean;
      Alcotest.test_case "release unheld" `Quick test_release_unheld;
      Alcotest.test_case "release by non-holder" `Quick test_release_other_holder;
      Alcotest.test_case "acquire held elsewhere" `Quick test_acquire_held;
      Alcotest.test_case "re-entrant locking" `Quick test_reentrant_ok;
      Alcotest.test_case "unreleased lock" `Quick test_unreleased;
      Alcotest.test_case "end without begin" `Quick test_end_without_begin;
      Alcotest.test_case "open block allowed" `Quick test_open_block_allowed;
      Alcotest.test_case "fork errors" `Quick test_fork_errors;
      Alcotest.test_case "join errors" `Quick test_join_errors;
      Alcotest.test_case "error messages" `Quick test_error_messages;
    ]
    @ Helpers.qcheck_tests [ prop_generator_wellformed; prop_workload_wellformed ]
  )
