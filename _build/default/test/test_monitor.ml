(* The high-level Monitor wrapper. *)

open Traces

let check = Alcotest.check

let test_stats_serializable () =
  let m = Aerodrome.Monitor.of_trace_domains Workloads.Scenarios.rho1 in
  let r = Aerodrome.Monitor.observe_all m (Trace.to_seq Workloads.Scenarios.rho1) in
  check Alcotest.bool "no violation" true (r = None);
  check Alcotest.bool "not violated" false (Aerodrome.Monitor.violated m);
  let s = Aerodrome.Monitor.stats m in
  check Alcotest.int "events" 10 s.events;
  check Alcotest.int "reads" 2 s.reads;
  check Alcotest.int "writes" 2 s.writes;
  check Alcotest.int "started" 3 s.transactions_started;
  check Alcotest.int "completed" 3 s.transactions_completed;
  check Alcotest.int "active" 0 s.active_transactions

let test_violation_report () =
  let fired = ref 0 in
  let m =
    Aerodrome.Monitor.create ~threads:2 ~locks:0 ~vars:2
      ~on_violation:(fun _ -> incr fired)
      ()
  in
  match Aerodrome.Monitor.observe_all m (Trace.to_seq Workloads.Scenarios.rho2) with
  | None -> Alcotest.fail "expected a violation"
  | Some r ->
    check Alcotest.int "callback fired once" 1 !fired;
    check Alcotest.int "at e6" 6 (r.violation.Aerodrome.Violation.index + 1);
    check Alcotest.string "thread name" "T0" r.thread_name;
    check Alcotest.bool "description" true (String.length r.description > 0);
    check Alcotest.int "stats at detection" 6 r.stats_at_detection.events;
    check Alcotest.bool "violated" true (Aerodrome.Monitor.violated m);
    check Alcotest.bool "report_to_string" true
      (String.length (Aerodrome.Monitor.report_to_string r) > 0)

let test_keeps_counting_after_violation () =
  let m = Aerodrome.Monitor.create ~threads:2 ~locks:0 ~vars:2 () in
  Trace.iter (fun e -> ignore (Aerodrome.Monitor.observe m e)) Workloads.Scenarios.rho2;
  let s = Aerodrome.Monitor.stats m in
  check Alcotest.int "all events counted" 8 s.events;
  (* the stored report is the first one *)
  match Aerodrome.Monitor.violation m with
  | Some r -> check Alcotest.int "first report kept" 6 (r.violation.index + 1)
  | None -> Alcotest.fail "expected a stored report"

let test_symbol_names () =
  let symbols : Trace.Symbols.t =
    { threads = [| "ui"; "db" |]; locks = [||]; vars = [| "count"; "total" |] }
  in
  let m = Aerodrome.Monitor.create ~symbols ~threads:2 ~locks:0 ~vars:2 () in
  match Aerodrome.Monitor.observe_all m (Trace.to_seq Workloads.Scenarios.rho2) with
  | None -> Alcotest.fail "expected a violation"
  | Some r ->
    check Alcotest.string "named thread" "ui" r.thread_name;
    check Alcotest.bool "named variable in description" true
      (let s = r.description in
       let n = String.length s and m = String.length "total" in
       let rec go i = i + m <= n && (String.sub s i m = "total" || go (i + 1)) in
       go 0)

let test_alternate_checker () =
  let m =
    Aerodrome.Monitor.of_trace_domains
      ~checker:(module Velodrome.Online : Aerodrome.Checker.S)
      Workloads.Scenarios.rho2
  in
  match Aerodrome.Monitor.observe_all m (Trace.to_seq Workloads.Scenarios.rho2) with
  | Some r -> (
    match r.violation.Aerodrome.Violation.site with
    | Aerodrome.Violation.Graph_cycle _ -> ()
    | _ -> Alcotest.fail "expected a velodrome witness")
  | None -> Alcotest.fail "expected a violation"

let test_pp_stats () =
  let m = Aerodrome.Monitor.create ~threads:1 ~locks:0 ~vars:1 () in
  ignore (Aerodrome.Monitor.observe m (Event.begin_ 0));
  ignore (Aerodrome.Monitor.observe m (Event.write 0 0));
  let s = Format.asprintf "%a" Aerodrome.Monitor.pp_stats (Aerodrome.Monitor.stats m) in
  check Alcotest.string "render" "2 events (0 reads, 1 writes, 0 sync); 1 transactions (0 completed, 1 active)" s

let prop_stats_match_metainfo =
  QCheck.Test.make ~name:"monitor statistics agree with Metainfo" ~count:100
    (Helpers.arb_trace ~threads:4 ~locks:2 ~vars:3 ~max_len:80 ())
    (fun tr ->
      let m = Aerodrome.Monitor.of_trace_domains tr in
      Trace.iter (fun e -> ignore (Aerodrome.Monitor.observe m e)) tr;
      let s = Aerodrome.Monitor.stats m in
      let mi = Analysis.Metainfo.analyze tr in
      s.events = mi.Analysis.Metainfo.events
      && s.reads = mi.Analysis.Metainfo.reads
      && s.writes = mi.Analysis.Metainfo.writes
      && s.transactions_started = mi.Analysis.Metainfo.transactions
      && s.transactions_completed = mi.Analysis.Metainfo.ends
      && s.syncs
         = mi.Analysis.Metainfo.acquires + mi.Analysis.Metainfo.releases
           + mi.Analysis.Metainfo.forks + mi.Analysis.Metainfo.joins)

let suite =
  ( "monitor",
    [
      Alcotest.test_case "stats on serializable trace" `Quick test_stats_serializable;
      Alcotest.test_case "violation report" `Quick test_violation_report;
      Alcotest.test_case "keeps counting" `Quick test_keeps_counting_after_violation;
      Alcotest.test_case "symbolic names" `Quick test_symbol_names;
      Alcotest.test_case "alternate checker" `Quick test_alternate_checker;
      Alcotest.test_case "pp stats" `Quick test_pp_stats;
    ]
    @ Helpers.qcheck_tests [ prop_stats_match_metainfo ] )
