(* The paper's running examples: verdicts for every checker, detection
   points, and step-by-step clock evolutions of Figures 5, 6 and 7. *)

open Traces
module VT = Vclock.Vtime

let check = Alcotest.check
let vt = Helpers.vtime

let expect_violation_at checker tr index name =
  match Aerodrome.Checker.run checker tr with
  | None -> Alcotest.failf "%s: expected a violation" name
  | Some v ->
    check Alcotest.int (name ^ ": index") index (v.Aerodrome.Violation.index + 1)

let expect_serializable checker tr name =
  match Aerodrome.Checker.run checker tr with
  | None -> ()
  | Some v ->
    Alcotest.failf "%s: unexpected violation at %d" name
      (v.Aerodrome.Violation.index + 1)

let test_rho1 () =
  List.iter
    (fun (name, checker) ->
      expect_serializable checker Workloads.Scenarios.rho1 ("rho1/" ^ name))
    Helpers.online_checkers

let test_rho2 () =
  (* Every algorithm detects rho2 exactly at e6, the r(y) of t1. *)
  List.iter
    (fun (name, checker) ->
      expect_violation_at checker Workloads.Scenarios.rho2 6 ("rho2/" ^ name))
    Helpers.online_checkers

let test_rho3 () =
  (* Algorithm 1 and 2 detect rho3 at the end event e7 (Section 4.2);
     the optimized variant and Velodrome see the cycle one event earlier,
     at e6, through the live clock of the still-open transaction. *)
  expect_violation_at (module Aerodrome.Basic) Workloads.Scenarios.rho3 7 "rho3/basic";
  expect_violation_at (module Aerodrome.Reduced) Workloads.Scenarios.rho3 7 "rho3/reduced";
  expect_violation_at (module Aerodrome.Opt) Workloads.Scenarios.rho3 6 "rho3/opt";
  expect_violation_at (module Velodrome.Online) Workloads.Scenarios.rho3 6 "rho3/velodrome"

let test_rho4 () =
  List.iter
    (fun (name, checker) ->
      expect_violation_at checker Workloads.Scenarios.rho4 11 ("rho4/" ^ name))
    Helpers.online_checkers

let test_rho1_transactions () =
  (* T3 ⋖ T1 ⋖ T2 in the reference transaction graph; serial order exists. *)
  let g = Velodrome.Reference.transaction_graph Workloads.Scenarios.rho1 in
  check Alcotest.bool "acyclic" true (Digraphs.Scc.is_acyclic g);
  (* txn ids in discovery order: T1 = 0, T2 = 1, T3 = 2 *)
  check Alcotest.bool "T1 before T2" true (Digraphs.Digraph.mem_edge g 0 1);
  check Alcotest.bool "T3 before T1" true (Digraphs.Digraph.mem_edge g 2 0)

(* Figure 5: AeroDrome's clocks on rho2, replayed on Algorithm 1. *)
let test_figure5_clocks () =
  let tr = Workloads.Scenarios.rho2 in
  let st = Aerodrome.Basic.create ~threads:2 ~locks:0 ~vars:2 in
  let feed i = Aerodrome.Basic.feed st (Trace.get tr (i - 1)) in
  let t1 = 0 and t2 = 1 and x = 0 and y = 1 in
  ignore (feed 1);
  check vt "C_t1 after e1" (VT.of_list [ 2; 0 ]) (Aerodrome.Basic.thread_clock st t1);
  ignore (feed 2);
  check vt "C_t2 after e2" (VT.of_list [ 0; 2 ]) (Aerodrome.Basic.thread_clock st t2);
  check vt "C⊲_t1" (VT.of_list [ 2; 0 ]) (Aerodrome.Basic.begin_clock st t1);
  check vt "C⊲_t2" (VT.of_list [ 0; 2 ]) (Aerodrome.Basic.begin_clock st t2);
  ignore (feed 3);
  check vt "W_x after e3" (VT.of_list [ 2; 0 ]) (Aerodrome.Basic.write_clock st x);
  ignore (feed 4);
  check vt "C_t2 after e4" (VT.of_list [ 2; 2 ]) (Aerodrome.Basic.thread_clock st t2);
  ignore (feed 5);
  check vt "W_y after e5" (VT.of_list [ 2; 2 ]) (Aerodrome.Basic.write_clock st y);
  match feed 6 with
  | Some v ->
    check Alcotest.bool "site is read-vs-write" true
      (v.Aerodrome.Violation.site = Aerodrome.Violation.At_read)
  | None -> Alcotest.fail "expected violation at e6"

(* Figure 6: rho3 — no violation before e7, then detected at the end. *)
let test_figure6_clocks () =
  let tr = Workloads.Scenarios.rho3 in
  let st = Aerodrome.Basic.create ~threads:2 ~locks:0 ~vars:2 in
  let feed i = Aerodrome.Basic.feed st (Trace.get tr (i - 1)) in
  let t1 = 0 and t2 = 1 and x = 0 and y = 1 in
  for i = 1 to 4 do
    check Alcotest.bool "no early violation" true (feed i = None)
  done;
  check vt "W_x" (VT.of_list [ 2; 0 ]) (Aerodrome.Basic.write_clock st x);
  check vt "W_y" (VT.of_list [ 0; 2 ]) (Aerodrome.Basic.write_clock st y);
  check Alcotest.bool "e5 passes" true (feed 5 = None);
  check vt "C_t1 after e5" (VT.of_list [ 2; 2 ]) (Aerodrome.Basic.thread_clock st t1);
  check Alcotest.bool "e6 passes" true (feed 6 = None);
  check vt "C_t2 after e6" (VT.of_list [ 2; 2 ]) (Aerodrome.Basic.thread_clock st t2);
  match feed 7 with
  | Some v ->
    check Alcotest.bool "detected at end vs t2" true
      (v.Aerodrome.Violation.site = Aerodrome.Violation.At_end (Ids.Tid.of_int t2))
  | None -> Alcotest.fail "expected violation at e7"

(* Figure 7: rho4 — the end event of T2 propagates into W_y, so T3 later
   inherits T1's knowledge through y. *)
let test_figure7_clocks () =
  let tr = Workloads.Scenarios.rho4 in
  let st = Aerodrome.Basic.create ~threads:3 ~locks:0 ~vars:3 in
  let feed i = Aerodrome.Basic.feed st (Trace.get tr (i - 1)) in
  let t2 = 1 and t3 = 2 and y = 1 and z = 2 in
  for i = 1 to 5 do
    ignore (feed i)
  done;
  check vt "C_t2 after e5" (VT.of_list [ 2; 2; 0 ]) (Aerodrome.Basic.thread_clock st t2);
  check vt "W_y before e6" (VT.of_list [ 0; 2; 0 ]) (Aerodrome.Basic.write_clock st y);
  ignore (feed 6);
  (* end of T2: W_y is ordered after C⊲_t2, so it absorbs C_t2 *)
  check vt "W_y after e6" (VT.of_list [ 2; 2; 0 ]) (Aerodrome.Basic.write_clock st y);
  ignore (feed 7);
  check vt "C_t3 after e7" (VT.of_list [ 0; 0; 2 ]) (Aerodrome.Basic.thread_clock st t3);
  ignore (feed 8);
  check vt "C_t3 after e8" (VT.of_list [ 2; 2; 2 ]) (Aerodrome.Basic.thread_clock st t3);
  ignore (feed 9);
  check vt "W_z after e9" (VT.of_list [ 2; 2; 2 ]) (Aerodrome.Basic.write_clock st z);
  ignore (feed 10);
  match feed 11 with
  | Some v ->
    check Alcotest.int "violation at e11" 11 (v.Aerodrome.Violation.index + 1)
  | None -> Alcotest.fail "expected violation at e11"

(* Example 5's prefix observations, via the reference oracle: σ6 of rho3 is
   still serializable (both transactions active), the full trace is not. *)
let test_example5_prefixes () =
  let tr = Workloads.Scenarios.rho3 in
  check Alcotest.bool "sigma6 serializable as a graph?" false
    (Velodrome.Reference.is_serializable (Trace.prefix tr 6));
  (* the cycle already exists in the prefix; AeroDrome however may only
     report it once a transaction completes (Theorem 3) *)
  check Alcotest.bool "basic reports nothing on sigma6" true
    (Aerodrome.Checker.run (module Aerodrome.Basic) (Trace.prefix tr 6) = None);
  check Alcotest.bool "basic reports on sigma7" false
    (Aerodrome.Checker.run (module Aerodrome.Basic) (Trace.prefix tr 7) = None)

let suite =
  ( "paper-traces",
    [
      Alcotest.test_case "rho1 serializable" `Quick test_rho1;
      Alcotest.test_case "rho2 violation at e6" `Quick test_rho2;
      Alcotest.test_case "rho3 violation at end" `Quick test_rho3;
      Alcotest.test_case "rho4 violation at e11" `Quick test_rho4;
      Alcotest.test_case "rho1 transaction graph" `Quick test_rho1_transactions;
      Alcotest.test_case "figure 5 clock evolution" `Quick test_figure5_clocks;
      Alcotest.test_case "figure 6 clock evolution" `Quick test_figure6_clocks;
      Alcotest.test_case "figure 7 clock evolution" `Quick test_figure7_clocks;
      Alcotest.test_case "example 5 prefixes" `Quick test_example5_prefixes;
    ] )
