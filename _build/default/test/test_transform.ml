(* Trace transformations: atomicity-specification filtering, projection,
   compaction and windowing. *)

open Traces

let check = Alcotest.check

let ops_string tr =
  Trace.fold
    (fun acc (e : Event.t) ->
      acc
      ^
      match e.op with
      | Event.Begin -> "["
      | Event.End -> "]"
      | Event.Read _ -> "r"
      | Event.Write _ -> "w"
      | Event.Acquire _ -> "a"
      | Event.Release _ -> "l"
      | Event.Fork _ -> "f"
      | Event.Join _ -> "j")
    "" tr

let nested_begins tr =
  let depth = Hashtbl.create 4 and nested = ref 0 in
  Trace.iter
    (fun (e : Event.t) ->
      let t = Ids.Tid.to_int e.thread in
      let d = Option.value ~default:0 (Hashtbl.find_opt depth t) in
      match e.op with
      | Event.Begin ->
        if d > 0 then incr nested;
        Hashtbl.replace depth t (d + 1)
      | Event.End -> Hashtbl.replace depth t (max 0 (d - 1))
      | _ -> ())
    tr;
  !nested

(* Applying an empty spec to rho2 removes the violation: all accesses
   become unary and unary transactions never cycle on their own. *)
let test_empty_spec_removes_violation () =
  let tr = Workloads.Scenarios.rho2 in
  check Alcotest.bool "originally violating" true
    (Helpers.verdict (module Aerodrome.Opt) tr);
  let stripped = Transform.strip_markers tr in
  check Alcotest.string "markers gone" "wrwr" (ops_string stripped);
  check Alcotest.bool "now serializable" false
    (Helpers.verdict (module Aerodrome.Opt) stripped);
  check Alcotest.bool "oracle agrees" false (Helpers.reference_violating stripped)

(* Partial specs on rho2.  Keeping only T1's block still violates: T2's
   now-unary accesses chain through program order back into T1 — a cycle
   through one real transaction and unary ones (Section 4.1.4's point that
   unary transactions participate in cycles, they just never report).
   Keeping only T2's block is serializable: the unary events of T1 are
   both completed before anything could cycle back into them. *)
let test_partial_spec () =
  let tr = Workloads.Scenarios.rho2 in
  let keep_thread n (t : Transactions.t) = Ids.Tid.to_int t.thread = n in
  let keep_t1 = Transform.apply_spec ~keep:(keep_thread 0) tr in
  check Alcotest.int "one block left" 1 (Transactions.count_blocks keep_t1);
  check Alcotest.bool "T1-only spec still violating" true
    (Helpers.verdict (module Aerodrome.Opt) keep_t1);
  check Alcotest.bool "oracle agrees (T1)" true
    (Helpers.reference_violating keep_t1);
  let keep_t2 = Transform.apply_spec ~keep:(keep_thread 1) tr in
  check Alcotest.bool "T2-only spec serializable" false
    (Helpers.verdict (module Aerodrome.Opt) keep_t2);
  check Alcotest.bool "oracle agrees (T2)" false
    (Helpers.reference_violating keep_t2)

(* Nested markers of kept transactions are dropped; the verdict of
   nested_ignored is preserved (checkers ignored them anyway). *)
let test_spec_flattens_nesting () =
  let tr = Workloads.Scenarios.nested_ignored in
  let all = Transform.apply_spec ~keep:(fun _ -> true) tr in
  check Alcotest.int "no nested begins" 0 (nested_begins all);
  check Alcotest.bool "still violating" true
    (Helpers.verdict (module Aerodrome.Opt) all)

(* Open transactions keep their begin. *)
let test_spec_open_block () =
  let tr = Trace.of_events [ Event.begin_ 0; Event.write 0 0 ] in
  let kept = Transform.apply_spec ~keep:(fun _ -> true) tr in
  check Alcotest.string "begin kept" "[w" (ops_string kept)

let test_only_threads () =
  let tr = Workloads.Scenarios.fork_join_serial in
  let projected =
    Transform.only_threads (fun t -> Ids.Tid.to_int t <> 2) tr
  in
  (* thread 2's block and the fork/join involving it are gone *)
  check Alcotest.string "projection" "f[w]j" (ops_string projected);
  check Alcotest.bool "wellformed" true (Wellformed.is_wellformed projected)

let test_compact () =
  (* sparse ids: threads 5 and 9, var 7, lock 3 *)
  let tr =
    Trace.of_events
      [
        Event.begin_ 5;
        Event.acquire 5 3;
        Event.write 5 7;
        Event.release 5 3;
        Event.end_ 5;
        Event.read 9 7;
      ]
  in
  check Alcotest.int "threads before" 10 (Trace.threads tr);
  let c = Transform.compact tr in
  check Alcotest.int "threads after" 2 (Trace.threads c);
  check Alcotest.int "locks after" 1 (Trace.locks c);
  check Alcotest.int "vars after" 1 (Trace.vars c);
  check Alcotest.string "structure preserved" (ops_string tr) (ops_string c)

let test_compact_preserves_verdict () =
  List.iter
    (fun (name, tr, expected) ->
      check Alcotest.bool name
        (expected = `Violating)
        (Helpers.verdict (module Aerodrome.Opt) (Transform.compact tr)))
    Workloads.Scenarios.all

let test_window_repair () =
  let tr = Workloads.Scenarios.rho4 in
  (* window covering events 3..10 cuts T1's block in half *)
  let w = Transform.limit_window 2 8 tr in
  check Alcotest.bool "wellformed after repair" true (Wellformed.is_wellformed w);
  (* full window is the identity modulo nothing to repair *)
  let full = Transform.limit_window 0 (Trace.length tr) tr in
  check Alcotest.string "identity" (ops_string tr) (ops_string full)

let test_window_closes_locks () =
  let tr =
    Trace.of_events
      [ Event.acquire 0 0; Event.write 0 1; Event.release 0 0; Event.read 1 1 ]
  in
  let w = Transform.limit_window 0 2 tr in
  check Alcotest.bool "lock closed" true (Wellformed.is_wellformed w);
  check Alcotest.string "release appended" "awl" (ops_string w)

let prop_window_wellformed =
  QCheck.Test.make ~name:"windows of well-formed traces repair cleanly"
    ~count:200
    (QCheck.pair
       (Helpers.arb_trace ~threads:4 ~locks:2 ~vars:3 ~max_len:60 ())
       (QCheck.pair QCheck.small_nat QCheck.small_nat))
    (fun (tr, (a, b)) ->
      let start = min a (Trace.length tr) in
      let w = Transform.limit_window start b tr in
      Wellformed.is_wellformed w)

let prop_spec_weakens =
  QCheck.Test.make
    ~name:"dropping transactions from the spec never adds violations"
    ~count:150
    (Helpers.arb_trace ~threads:3 ~locks:2 ~vars:3 ~max_len:60 ())
    (fun tr ->
      (* keep an arbitrary half of the transactions *)
      let filtered =
        Transform.apply_spec ~keep:(fun t -> t.Transactions.id mod 2 = 0) tr
      in
      (not (Helpers.reference_violating filtered))
      || Helpers.reference_violating tr)

let suite =
  ( "transform",
    [
      Alcotest.test_case "empty spec removes violation" `Quick
        test_empty_spec_removes_violation;
      Alcotest.test_case "partial spec" `Quick test_partial_spec;
      Alcotest.test_case "spec flattens nesting" `Quick test_spec_flattens_nesting;
      Alcotest.test_case "spec keeps open begins" `Quick test_spec_open_block;
      Alcotest.test_case "thread projection" `Quick test_only_threads;
      Alcotest.test_case "compact ids" `Quick test_compact;
      Alcotest.test_case "compact preserves verdicts" `Quick
        test_compact_preserves_verdict;
      Alcotest.test_case "window repair" `Quick test_window_repair;
      Alcotest.test_case "window closes locks" `Quick test_window_closes_locks;
    ]
    @ Helpers.qcheck_tests [ prop_window_wellformed; prop_spec_weakens ] )
