  $ rapid generate --events 300 --threads 3 --seed 7 -o trace.std
  $ rapid metainfo trace.std | head -3
  $ rapid check -q trace.std
  $ rapid check -q -a aerodrome-basic trace.std
  $ rapid check -q -a velodrome trace.std
  $ rapid generate --events 300 --threads 3 --seed 7 --violate-at 0.5 -o bad.std
  $ rapid check -q bad.std
  $ rapid check bad.std 2>&1 | sed 's/in [0-9.]*s/in TIME/'
  $ rapid check -a velodrome bad.std 2>&1 | sed 's/in [0-9.]*s/in TIME/'
  $ rapid check -a frobnicate trace.std
  $ rapid generate --profile nope
  $ rapid profiles | head -2
  $ rapid profiles | wc -l
  $ rapid generate --events 300 --threads 3 --seed 7 | head -4
  $ cat > rho2.std <<DONE
  > t1|begin
  > t2|begin
  > t1|w(x)
  > t2|r(x)
  > t2|w(y)
  > t1|r(y)
  > t1|end
  > t2|end
  > DONE
  $ rapid clocks rho2.std
  $ rapid convert rho2.std rho2.bin
  $ rapid check -q rho2.bin
  $ rapid metainfo rho2.bin | head -1
  $ rapid convert --text rho2.bin back.std
  $ rapid check -q back.std
  $ rapid explain rho2.std
