(* The conflict-happens-before relation, and the paper's Examples 1–5. *)

open Traces

let check = Alcotest.check

(* Example 1 (trace rho1): e2 and e4 conflict, e7 and e9 conflict, and
   ≤CHB is transitive: e1 ≤CHB e5. *)
let test_example1 () =
  let chb = Aerodrome.Chb.compute Workloads.Scenarios.rho1 in
  let hb i j = Aerodrome.Chb.happens_before chb (i - 1) (j - 1) in
  check Alcotest.bool "e2 <= e4 (w(x)/r(x))" true (hb 2 4);
  check Alcotest.bool "e7 <= e9 (w(z)/r(z))" true (hb 7 9);
  check Alcotest.bool "e1 <= e5 (transitivity)" true (hb 1 5);
  check Alcotest.bool "reflexive" true (hb 3 3);
  check Alcotest.bool "no backwards order" false (hb 9 7);
  (* events of different threads with no conflict path stay concurrent *)
  check Alcotest.bool "e6 and e1 concurrent" true
    (Aerodrome.Chb.concurrent chb 5 0)

(* Example 3 (trace rho2): the CHB path e1 ≤ e4 ≤ e5 ≤ e7 starts and ends
   in transaction T1 and passes through T2. *)
let test_example3 () =
  let chb = Aerodrome.Chb.compute Workloads.Scenarios.rho2 in
  let hb i j = Aerodrome.Chb.happens_before chb (i - 1) (j - 1) in
  check Alcotest.bool "e1 <= e4" true (hb 1 4);
  check Alcotest.bool "e4 <= e5" true (hb 4 5);
  check Alcotest.bool "e5 <= e7" true (hb 5 7);
  check Alcotest.bool "e1 <= e7 via T2" true (hb 1 7)

(* Example 4 (trace rho3): there is NO ≤CHB path that starts and ends in
   the same transaction — e3 ≤ e6 and e4 ≤ e5 but nothing returns. *)
let test_example4 () =
  let tr = Workloads.Scenarios.rho3 in
  let chb = Aerodrome.Chb.compute tr in
  let hb i j = Aerodrome.Chb.happens_before chb (i - 1) (j - 1) in
  check Alcotest.bool "e3 <= e6" true (hb 3 6);
  check Alcotest.bool "e4 <= e5" true (hb 4 5);
  let owners = Transactions.owner tr in
  let n = Trace.length tr in
  let same_txn_roundtrip = ref false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      (* a CHB path leaving the transaction and coming back *)
      if
        i < j && owners.(i) = owners.(j)
        && Aerodrome.Chb.happens_before chb i j
        && List.exists
             (fun k ->
               owners.(k) <> owners.(i)
               && Aerodrome.Chb.happens_before chb i k
               && Aerodrome.Chb.happens_before chb k j)
             (List.init n Fun.id)
      then same_txn_roundtrip := true
    done
  done;
  check Alcotest.bool "no same-transaction CHB roundtrip" false
    !same_txn_roundtrip;
  (* ... yet rho3 is violating: ≤CHB alone cannot witness it (the paper's
     point), while the →* relation of Section 3 can *)
  check Alcotest.bool "violating" true (Helpers.reference_violating tr);
  check Alcotest.bool "Proposition 1 witness exists" true
    (Option.is_some (Aerodrome.Chb.first_path_witness chb tr))

(* Example 5: e1 ->* e4 in rho3 (through T1 and T2). *)
let test_example5_path () =
  let tr = Workloads.Scenarios.rho3 in
  let chb = Aerodrome.Chb.compute tr in
  check Alcotest.bool "e1 ->* e4" true
    (Aerodrome.Chb.path_through_transactions chb tr 0 3);
  check Alcotest.bool "e4 ->* e7" true
    (Aerodrome.Chb.path_through_transactions chb tr 3 6)

(* Proposition 1, as a property: a complete trace has a ->*/≤CHB witness
   pair iff it is not conflict serializable. *)
let prop_proposition1 =
  QCheck.Test.make ~name:"Proposition 1: witness iff not serializable"
    ~count:150
    (Helpers.arb_trace ~threads:3 ~locks:2 ~vars:3 ~max_len:40 ())
    (fun tr ->
      let chb = Aerodrome.Chb.compute tr in
      Option.is_some (Aerodrome.Chb.first_path_witness chb tr)
      = Helpers.reference_violating tr)

(* Locks and fork/join induce CHB order. *)
let test_sync_order () =
  let tr = Workloads.Scenarios.lock_violation in
  let chb = Aerodrome.Chb.compute tr in
  (* t1's first rel (e3) before t2's acq (e5) *)
  check Alcotest.bool "rel <= acq" true (Aerodrome.Chb.happens_before chb 2 4);
  let tr2 = Workloads.Scenarios.fork_join_serial in
  let chb2 = Aerodrome.Chb.compute tr2 in
  (* fork(1) at e1 before t1's begin at e3; t1's end (e5) before join (e9) *)
  check Alcotest.bool "fork <= child" true
    (Aerodrome.Chb.happens_before chb2 0 2);
  check Alcotest.bool "child <= join" true
    (Aerodrome.Chb.happens_before chb2 4 8)

(* CHB is consistent with the conflict relation: conflicting pairs are
   ordered by trace position. *)
let prop_conflicts_ordered =
  QCheck.Test.make ~name:"conflicting pairs are CHB ordered" ~count:150
    (Helpers.arb_trace ~threads:4 ~locks:2 ~vars:3 ~max_len:50 ())
    (fun tr ->
      let chb = Aerodrome.Chb.compute tr in
      let n = Trace.length tr in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if
            Event.conflicts (Trace.get tr i) (Trace.get tr j)
            && not (Aerodrome.Chb.happens_before chb i j)
          then ok := false
        done
      done;
      !ok)

(* ... and is antisymmetric on distinct events. *)
let prop_antisymmetric =
  QCheck.Test.make ~name:"CHB is antisymmetric" ~count:150
    (Helpers.arb_trace ~threads:3 ~locks:1 ~vars:2 ~max_len:40 ())
    (fun tr ->
      let chb = Aerodrome.Chb.compute tr in
      let n = Trace.length tr in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          if
            Aerodrome.Chb.happens_before chb i j
            && Aerodrome.Chb.happens_before chb j i
          then ok := false
        done
      done;
      !ok)

(* Each thread's events carry strictly increasing local components, so
   timestamps identify events uniquely within a thread. *)
let prop_local_components_increase =
  QCheck.Test.make ~name:"CHB local components strictly increase" ~count:100
    (Helpers.arb_trace ~threads:3 ~locks:2 ~vars:3 ~max_len:60 ())
    (fun tr ->
      let chb = Aerodrome.Chb.compute tr in
      let last = Hashtbl.create 4 in
      let ok = ref true in
      Trace.iteri
        (fun i (e : Event.t) ->
          let t = Ids.Tid.to_int e.thread in
          let local = Vclock.Vtime.get (Aerodrome.Chb.timestamp chb i) t in
          (match Hashtbl.find_opt last t with
          | Some prev when local <= prev -> ok := false
          | _ -> ());
          Hashtbl.replace last t local)
        tr;
      !ok)

let suite =
  ( "chb",
    [
      Alcotest.test_case "example 1 (rho1)" `Quick test_example1;
      Alcotest.test_case "example 3 (rho2)" `Quick test_example3;
      Alcotest.test_case "example 4 (rho3)" `Quick test_example4;
      Alcotest.test_case "example 5 (->* paths)" `Quick test_example5_path;
      Alcotest.test_case "sync order" `Quick test_sync_order;
    ]
    @ Helpers.qcheck_tests
        [
          prop_proposition1;
          prop_conflicts_ordered;
          prop_antisymmetric;
          prop_local_components_increase;
        ] )
