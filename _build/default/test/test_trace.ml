(* Tests for ids, events and the trace container. *)

open Traces

let check = Alcotest.check

(* --- Ids --- *)

let test_interner () =
  let i = Ids.Interner.create () in
  check Alcotest.int "first" 0 (Ids.Interner.intern i "main");
  check Alcotest.int "second" 1 (Ids.Interner.intern i "worker");
  check Alcotest.int "repeat" 0 (Ids.Interner.intern i "main");
  check Alcotest.int "count" 2 (Ids.Interner.count i);
  check Alcotest.string "name" "worker" (Ids.Interner.name i 1);
  check (Alcotest.option Alcotest.int) "find" (Some 1) (Ids.Interner.find i "worker");
  check (Alcotest.option Alcotest.int) "find missing" None (Ids.Interner.find i "nope");
  Alcotest.check_raises "out of range" (Invalid_argument "Interner.name: out of range")
    (fun () -> ignore (Ids.Interner.name i 7))

let test_interner_growth () =
  let i = Ids.Interner.create () in
  for k = 0 to 99 do
    ignore (Ids.Interner.intern i (Printf.sprintf "name%d" k))
  done;
  check Alcotest.int "count" 100 (Ids.Interner.count i);
  check Alcotest.string "name99" "name99" (Ids.Interner.name i 99);
  check Alcotest.int "names array" 100 (Array.length (Ids.Interner.names i))

let test_id_modules () =
  check Alcotest.string "tid pp" "T3" (Ids.Tid.to_string (Ids.Tid.of_int 3));
  check Alcotest.string "lid pp" "L0" (Ids.Lid.to_string (Ids.Lid.of_int 0));
  check Alcotest.string "vid pp" "V17" (Ids.Vid.to_string (Ids.Vid.of_int 17));
  Alcotest.check_raises "negative id" (Invalid_argument "T id: negative")
    (fun () -> ignore (Ids.Tid.of_int (-1)))

(* --- Event conflicts --- *)

let test_conflicts () =
  let t f = check Alcotest.bool "conflicts" true f
  and f g = check Alcotest.bool "no conflict" false g in
  t (Event.conflicts (Event.read 0 0) (Event.write 0 1));  (* same thread *)
  t (Event.conflicts (Event.write 0 5) (Event.read 1 5));  (* w-r *)
  t (Event.conflicts (Event.read 0 5) (Event.write 1 5));  (* r-w *)
  t (Event.conflicts (Event.write 0 5) (Event.write 1 5));  (* w-w *)
  f (Event.conflicts (Event.read 0 5) (Event.read 1 5));  (* r-r *)
  f (Event.conflicts (Event.write 0 5) (Event.write 1 6));  (* distinct vars *)
  t (Event.conflicts (Event.release 0 2) (Event.acquire 1 2));
  f (Event.conflicts (Event.acquire 0 2) (Event.release 1 2));  (* ordered pair semantics *)
  f (Event.conflicts (Event.release 0 2) (Event.acquire 1 3));
  t (Event.conflicts (Event.fork 0 1) (Event.read 1 0));
  f (Event.conflicts (Event.fork 0 1) (Event.read 2 0));
  t (Event.conflicts (Event.write 1 0) (Event.join 0 1));
  f (Event.conflicts (Event.write 2 0) (Event.join 0 1))

let test_event_classes () =
  check Alcotest.bool "access" true (Event.is_access (Event.read 0 0));
  check Alcotest.bool "sync" true (Event.is_sync (Event.acquire 0 0));
  check Alcotest.bool "marker" true (Event.is_marker (Event.begin_ 0));
  check Alcotest.bool "not access" false (Event.is_access (Event.end_ 0));
  check Alcotest.string "pp" "⟨T1,w(V2)⟩" (Event.to_string (Event.write 1 2))

(* --- Trace container --- *)

let sample =
  [ Event.begin_ 0; Event.write 0 4; Event.fork 0 2; Event.acquire 2 1; Event.release 2 1; Event.end_ 0 ]

let test_domains () =
  let tr = Trace.of_events sample in
  check Alcotest.int "threads (fork target counted)" 3 (Trace.threads tr);
  check Alcotest.int "locks" 2 (Trace.locks tr);
  check Alcotest.int "vars" 5 (Trace.vars tr);
  check Alcotest.int "length" 6 (Trace.length tr)

let test_accessors () =
  let tr = Trace.of_events sample in
  check Alcotest.bool "get" true (Event.equal (Trace.get tr 1) (Event.write 0 4));
  check Alcotest.int "fold" 6 (Trace.fold (fun n _ -> n + 1) 0 tr);
  check Alcotest.int "to_list" 6 (List.length (Trace.to_list tr));
  check Alcotest.int "to_seq" 6 (Seq.length (Trace.to_seq tr))

let test_prefix_append () =
  let tr = Trace.of_events sample in
  let p = Trace.prefix tr 2 in
  check Alcotest.int "prefix len" 2 (Trace.length p);
  check Alcotest.int "prefix keeps domains" 3 (Trace.threads p);
  Alcotest.check_raises "prefix range" (Invalid_argument "Trace.prefix: out of range")
    (fun () -> ignore (Trace.prefix tr 7));
  let ext = Trace.append p [ Event.read 5 9 ] in
  check Alcotest.int "append grows domains" 6 (Trace.threads ext);
  check Alcotest.int "append vars" 10 (Trace.vars ext)

let test_concat () =
  let tr = Trace.concat [ Trace.of_events [ Event.read 0 0 ]; Trace.of_events [ Event.write 1 1 ] ] in
  check Alcotest.int "concat" 2 (Trace.length tr);
  check Alcotest.int "empty" 0 (Trace.length Trace.empty)

let test_builder () =
  let b = Trace.Builder.create ~capacity:1 () in
  Trace.Builder.begin_ b 0;
  Trace.Builder.read b 0 ~var:3;
  Trace.Builder.write b 0 ~var:3;
  Trace.Builder.acquire b 1 ~lock:0;
  Trace.Builder.release b 1 ~lock:0;
  Trace.Builder.fork b 0 ~child:2;
  Trace.Builder.join b 0 ~child:2;
  Trace.Builder.end_ b 0;
  check Alcotest.int "length" 8 (Trace.Builder.length b);
  let tr1 = Trace.Builder.build b in
  Trace.Builder.write b 1 ~var:9;
  let tr2 = Trace.Builder.build b in
  check Alcotest.int "snapshot isolated" 8 (Trace.length tr1);
  check Alcotest.int "builder still usable" 9 (Trace.length tr2)

(* --- Transactions --- *)

let test_transactions_basic () =
  let tr = Workloads.Scenarios.rho1 in
  let txns = Transactions.of_trace tr in
  check Alcotest.int "three transactions" 3 (List.length txns);
  check Alcotest.int "count_blocks" 3 (Transactions.count_blocks tr);
  List.iter
    (fun (t : Transactions.t) ->
      check Alcotest.bool "completed" true t.completed;
      check Alcotest.bool "block" true (t.kind = Transactions.Block))
    txns

let test_transactions_partition () =
  let tr = Workloads.Scenarios.unary_no_report in
  let txns = Transactions.of_trace tr in
  check Alcotest.int "unary each" 4 (List.length txns);
  List.iter
    (fun (t : Transactions.t) ->
      check Alcotest.bool "unary" true (t.kind = Transactions.Unary))
    txns;
  let owners = Transactions.owner tr in
  Array.iter (fun o -> check Alcotest.bool "owned" true (o >= 0)) owners

let test_transactions_nested () =
  let tr = Workloads.Scenarios.nested_ignored in
  check Alcotest.int "outermost only" 2 (Transactions.count_blocks tr);
  let txns = Transactions.of_trace tr in
  check Alcotest.int "two blocks" 2 (List.length txns)

let test_transactions_active () =
  let tr =
    Trace.of_events [ Event.begin_ 0; Event.write 0 0; Event.begin_ 1 ]
  in
  let txns = Transactions.of_trace tr in
  check Alcotest.int "two" 2 (List.length txns);
  List.iter
    (fun (t : Transactions.t) ->
      check Alcotest.bool "active" false t.completed)
    txns

let prop_owner_partitions =
  QCheck.Test.make ~name:"transactions partition the trace" ~count:100
    (Helpers.arb_trace ~complete:false ())
    (fun tr ->
      let owners = Transactions.owner tr in
      let txns = Transactions.of_trace tr in
      let total = List.fold_left (fun n (t : Transactions.t) -> n + List.length t.events) 0 txns in
      total = Trace.length tr && Array.for_all (fun o -> o >= 0) owners)

let suite =
  ( "trace",
    [
      Alcotest.test_case "interner" `Quick test_interner;
      Alcotest.test_case "interner growth" `Quick test_interner_growth;
      Alcotest.test_case "id modules" `Quick test_id_modules;
      Alcotest.test_case "conflicts" `Quick test_conflicts;
      Alcotest.test_case "event classes" `Quick test_event_classes;
      Alcotest.test_case "domains" `Quick test_domains;
      Alcotest.test_case "accessors" `Quick test_accessors;
      Alcotest.test_case "prefix/append" `Quick test_prefix_append;
      Alcotest.test_case "concat/empty" `Quick test_concat;
      Alcotest.test_case "builder" `Quick test_builder;
      Alcotest.test_case "transactions: rho1" `Quick test_transactions_basic;
      Alcotest.test_case "transactions: unary" `Quick test_transactions_partition;
      Alcotest.test_case "transactions: nesting" `Quick test_transactions_nested;
      Alcotest.test_case "transactions: active" `Quick test_transactions_active;
    ]
    @ Helpers.qcheck_tests [ prop_owner_partitions ] )
