test/stress/stress.ml: Aerodrome Array Helpers List Option Parser Printexc Printf Random Sys Traces Unix Velodrome
