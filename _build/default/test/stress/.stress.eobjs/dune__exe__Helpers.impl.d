test/stress/helpers.ml: Aerodrome Alcotest Array Event Format List Option Parser QCheck QCheck_alcotest Random Trace Traces Vclock Velodrome
