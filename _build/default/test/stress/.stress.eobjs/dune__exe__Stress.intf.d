test/stress/stress.mli:
