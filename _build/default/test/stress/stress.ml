(* Heavy randomized differential testing, runnable on demand:

     dune exec test/stress/stress.exe -- [cases]

   Every online checker is compared against the offline oracle on random
   well-formed traces (complete and incomplete); any exception, verdict
   disagreement on a complete trace, or false positive on a prefix is a
   failure.  The low-count version of this property runs in the regular
   test suite (test/test_checkers.ml); this executable cranks the volume. *)

open Traces

let checkers : (string * Aerodrome.Checker.t) list =
  [
    ("aerodrome-basic", (module Aerodrome.Basic));
    ("aerodrome-reduced", (module Aerodrome.Reduced));
    ("aerodrome", (module Aerodrome.Opt));
    ("aerodrome-slow", Aerodrome.Opt.slow_checker);
    ("velodrome", (module Velodrome.Online));
    ("velodrome-nogc", Velodrome.Online.no_gc_checker);
    ("velodrome-pk", Velodrome.Online.pk_checker);
  ]

let () =
  let cases =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 100_000
  in
  let rs = Random.State.make [| 0xAE120D20 |] in
  let bad = ref 0 in
  let start = Unix.gettimeofday () in
  for i = 1 to cases do
    let threads = 2 + Random.State.int rs 4 in
    let locks = Random.State.int rs 3 in
    let vars = 1 + Random.State.int rs 3 in
    let len = 5 + Random.State.int rs 70 in
    let complete = Random.State.int rs 4 > 0 in
    let tr = Helpers.gen_trace_events ~threads ~locks ~vars ~len ~complete rs in
    let expected = not (Velodrome.Reference.is_serializable tr) in
    List.iter
      (fun (name, c) ->
        let fail msg =
          incr bad;
          if !bad <= 5 then
            Printf.printf "=== case %d, %s: %s (complete=%b oracle=%b)\n%s\n" i
              name msg complete expected (Parser.to_string tr)
        in
        match Option.is_some (Aerodrome.Checker.run c tr) with
        | verdict ->
          if complete && verdict <> expected then
            fail (Printf.sprintf "verdict=%b" verdict)
          else if (not complete) && verdict && not expected then
            fail "false positive on an incomplete trace"
        | exception e -> fail ("exception: " ^ Printexc.to_string e))
      checkers
  done;
  Printf.printf "stress: %d cases x %d checkers in %.1fs, %d failures\n" cases
    (List.length checkers)
    (Unix.gettimeofday () -. start)
    !bad;
  if !bad > 0 then exit 1
