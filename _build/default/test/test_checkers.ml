(* Differential and behavioural tests of the online checkers.

   The oracle is the offline pairwise-conflict reference (Definition 1).
   On complete traces — all transactions closed — Theorem 3 makes every
   AeroDrome variant's verdict coincide with the oracle's; Velodrome
   coincides unconditionally. *)

open Traces

let check = Alcotest.check

(* --- scenario verdicts across every checker --- *)

let test_scenarios_all_checkers () =
  List.iter
    (fun (name, tr, expected) ->
      let expected = expected = `Violating in
      check Alcotest.bool ("reference/" ^ name) expected
        (Helpers.reference_violating tr);
      List.iter
        (fun (cname, checker) ->
          check Alcotest.bool
            (Printf.sprintf "%s/%s" cname name)
            expected (Helpers.verdict checker tr))
        Helpers.online_checkers)
    Workloads.Scenarios.all

(* --- the three Algorithm 3 pseudocode deviations (regressions) --- *)

let test_faithful_unary_false_positive () =
  let tr = Workloads.Scenarios.unary_flush_false_positive in
  check Alcotest.bool "serializable per oracle" false (Helpers.reference_violating tr);
  check Alcotest.bool "fixed checker agrees" false
    (Helpers.verdict (module Aerodrome.Opt) tr);
  check Alcotest.bool "printed pseudocode reports spuriously" true
    (Helpers.verdict Aerodrome.Opt.faithful_checker tr)

let test_faithful_gc_miss () =
  let tr = Workloads.Scenarios.gc_clock_equality_miss in
  check Alcotest.bool "violating per oracle" true (Helpers.reference_violating tr);
  check Alcotest.bool "fixed checker detects" true
    (Helpers.verdict (module Aerodrome.Opt) tr);
  check Alcotest.bool "printed pseudocode misses" false
    (Helpers.verdict Aerodrome.Opt.faithful_checker tr)

let test_faithful_transitive_miss () =
  let tr = Workloads.Scenarios.transitive_update_miss in
  check Alcotest.bool "violating per oracle" true (Helpers.reference_violating tr);
  check Alcotest.bool "fixed checker detects" true
    (Helpers.verdict (module Aerodrome.Opt) tr);
  check Alcotest.bool "basic detects" true
    (Helpers.verdict (module Aerodrome.Basic) tr);
  check Alcotest.bool "printed pseudocode misses" false
    (Helpers.verdict Aerodrome.Opt.faithful_checker tr)

(* --- freeze-at-first-violation semantics --- *)

let test_freeze () =
  List.iter
    (fun (name, (module C : Aerodrome.Checker.S)) ->
      let tr = Workloads.Scenarios.rho2 in
      let st = C.create ~threads:2 ~locks:0 ~vars:2 in
      let first = ref None in
      Trace.iter
        (fun e ->
          match (C.feed st e, !first) with
          | Some v, None -> first := Some v
          | Some v, Some v0 ->
            check Alcotest.bool (name ^ ": same violation") true
              (Aerodrome.Violation.same_event v v0)
          | None, Some _ -> Alcotest.failf "%s: violation forgotten" name
          | None, None -> ())
        tr;
      check Alcotest.bool (name ^ ": found") true (Option.is_some !first);
      check Alcotest.bool (name ^ ": stored") true (Option.is_some (C.violation st)))
    Helpers.online_checkers

let test_processed_counts () =
  let tr = Workloads.Scenarios.rho1 in
  let (module C : Aerodrome.Checker.S) = (module Aerodrome.Opt) in
  let st = C.create ~threads:3 ~locks:0 ~vars:3 in
  Trace.iter (fun e -> ignore (C.feed st e)) tr;
  check Alcotest.int "all processed" (Trace.length tr) (C.processed st);
  (* frozen checkers stop counting *)
  let st2 = C.create ~threads:2 ~locks:0 ~vars:2 in
  Trace.iter (fun e -> ignore (C.feed st2 e)) Workloads.Scenarios.rho2;
  check Alcotest.int "frozen at violation" 6 (C.processed st2)

(* --- differential properties on random complete traces --- *)

let verdicts_agree tr =
  let expected = Helpers.reference_violating tr in
  List.for_all
    (fun (_, checker) -> Helpers.verdict checker tr = expected)
    Helpers.online_checkers

let prop_verdict_agreement =
  QCheck.Test.make ~name:"all checkers agree with the oracle (complete traces)"
    ~count:400
    (Helpers.arb_trace ~threads:3 ~locks:2 ~vars:3 ~max_len:50 ())
    verdicts_agree

let prop_verdict_agreement_forkful =
  QCheck.Test.make ~name:"agreement with forks and joins" ~count:300
    (Helpers.arb_trace ~threads:5 ~locks:1 ~vars:2 ~max_len:80 ())
    verdicts_agree

let prop_verdict_agreement_locky =
  QCheck.Test.make ~name:"agreement on lock-heavy traces" ~count:300
    (Helpers.arb_trace ~threads:3 ~locks:3 ~vars:1 ~max_len:70 ())
    verdicts_agree

let prop_basic_reduced_same_index =
  QCheck.Test.make ~name:"Algorithm 1 and 2 report the same event" ~count:300
    (Helpers.arb_trace ~threads:3 ~locks:2 ~vars:3 ~max_len:60 ())
    (fun tr ->
      Helpers.violation_index (module Aerodrome.Basic) tr
      = Helpers.violation_index (module Aerodrome.Reduced) tr)

let prop_opt_fast_slow_same_index =
  QCheck.Test.make ~name:"epoch shortcut does not change the detection point"
    ~count:300
    (Helpers.arb_trace ~threads:4 ~locks:2 ~vars:3 ~max_len:60 ())
    (fun tr ->
      Helpers.violation_index (module Aerodrome.Opt) tr
      = Helpers.violation_index Aerodrome.Opt.slow_checker tr)

(* Soundness on incomplete traces: a checker may miss (Theorem 3 only
   promises witnesses with at most one active transaction) but must never
   report a violation on a serializable prefix. *)
let prop_no_false_positives_on_prefixes =
  QCheck.Test.make ~name:"no false positives on incomplete traces" ~count:300
    (Helpers.arb_trace ~threads:3 ~locks:2 ~vars:3 ~max_len:50 ~complete:false ())
    (fun tr ->
      List.for_all
        (fun (_, checker) ->
          (not (Helpers.verdict checker tr)) || Helpers.reference_violating tr)
        Helpers.online_checkers)

(* Monotonicity: the prefix up to (and including) the reported event is
   already violating per the oracle, and the prefix just before it is where
   the checker saw no problem. *)
let prop_detection_point_is_violating =
  QCheck.Test.make ~name:"the reported prefix is violating per the oracle"
    ~count:200
    (Helpers.arb_trace ~threads:3 ~locks:2 ~vars:3 ~max_len:50 ())
    (fun tr ->
      match Helpers.violation_index (module Aerodrome.Opt) tr with
      | None -> true
      | Some i -> Helpers.reference_violating (Trace.prefix tr (i + 1)))

let suite =
  ( "checkers",
    [
      Alcotest.test_case "scenario verdicts" `Quick test_scenarios_all_checkers;
      Alcotest.test_case "deviation: unary flush false positive" `Quick
        test_faithful_unary_false_positive;
      Alcotest.test_case "deviation: GC clock-equality miss" `Quick
        test_faithful_gc_miss;
      Alcotest.test_case "deviation: transitive update-set miss" `Quick
        test_faithful_transitive_miss;
      Alcotest.test_case "freeze at first violation" `Quick test_freeze;
      Alcotest.test_case "processed counts" `Quick test_processed_counts;
    ]
    @ Helpers.qcheck_tests
        [
          prop_verdict_agreement;
          prop_verdict_agreement_forkful;
          prop_verdict_agreement_locky;
          prop_basic_reduced_same_index;
          prop_opt_fast_slow_same_index;
          prop_no_false_positives_on_prefixes;
          prop_detection_point_is_violating;
        ] )
