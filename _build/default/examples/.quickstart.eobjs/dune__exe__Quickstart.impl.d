examples/quickstart.ml: Aerodrome Event Format Trace Traces Vclock Velodrome
