examples/big_trace.mli:
