examples/philosophers.mli:
