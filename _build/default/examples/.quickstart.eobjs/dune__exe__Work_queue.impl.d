examples/work_queue.ml: Aerodrome Array Format List Trace Traces Transactions Velodrome Workloads
