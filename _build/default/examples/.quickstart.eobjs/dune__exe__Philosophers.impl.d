examples/philosophers.ml: Aerodrome Analysis Array Event Format Ids List Trace Traces Velodrome Workloads
