examples/bank_audit.ml: Aerodrome Array Format Printf Trace Traces Transactions Velodrome Workloads
