examples/work_queue.mli:
