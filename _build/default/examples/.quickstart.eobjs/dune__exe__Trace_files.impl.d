examples/trace_files.ml: Aerodrome Analysis Filename Format Fun Parser Sys Trace Traces Velodrome Workloads
