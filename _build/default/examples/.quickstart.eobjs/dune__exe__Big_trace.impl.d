examples/big_trace.ml: Aerodrome Analysis Binfmt Filename Format Fun Sys Trace Traces Unix Velodrome Workloads
