examples/quickstart.mli:
