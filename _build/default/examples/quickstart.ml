(* Quickstart: build traces with the Builder DSL, check them for atomicity
   violations, and inspect what the checker saw.

   Run with: dune exec examples/quickstart.exe *)

open Traces

(* The paper's Figure 2 (trace rho2): two atomic blocks whose reads and
   writes interleave so that each must come before the other — the classic
   non-serializable pattern. *)
let rho2 =
  let b = Trace.Builder.create () in
  let t1 = 0 and t2 = 1 and x = 0 and y = 1 in
  Trace.Builder.begin_ b t1;
  Trace.Builder.begin_ b t2;
  Trace.Builder.write b t1 ~var:x;
  Trace.Builder.read b t2 ~var:x;
  Trace.Builder.write b t2 ~var:y;
  Trace.Builder.read b t1 ~var:y;
  Trace.Builder.end_ b t1;
  Trace.Builder.end_ b t2;
  Trace.Builder.build b

(* A serializable variant: the second block starts only after the first
   finished. *)
let serial =
  let b = Trace.Builder.create () in
  let t1 = 0 and t2 = 1 and x = 0 and y = 1 in
  Trace.Builder.begin_ b t1;
  Trace.Builder.write b t1 ~var:x;
  Trace.Builder.read b t1 ~var:y;
  Trace.Builder.end_ b t1;
  Trace.Builder.begin_ b t2;
  Trace.Builder.read b t2 ~var:x;
  Trace.Builder.write b t2 ~var:y;
  Trace.Builder.end_ b t2;
  Trace.Builder.build b

let describe name tr =
  Format.printf "== %s ==@.%a@." name Trace.pp tr;
  (* One call checks a whole trace... *)
  (match Aerodrome.Checker.run (module Aerodrome.Opt) tr with
  | None -> Format.printf "aerodrome: conflict serializable@."
  | Some v -> Format.printf "aerodrome: %a@." Aerodrome.Violation.pp v);
  (* ... and the Velodrome baseline agrees, with a cycle as witness. *)
  (match Aerodrome.Checker.run (module Velodrome.Online) tr with
  | None -> Format.printf "velodrome: conflict serializable@."
  | Some v -> Format.printf "velodrome: %a@." Aerodrome.Violation.pp v);
  Format.printf "@."

(* The checkers are streaming: feed events one at a time for online
   monitoring.  Here we also watch the vector clocks evolve, reproducing
   Figure 5 of the paper. *)
let watch_clocks () =
  Format.printf "== clock evolution on rho2 (Figure 5) ==@.";
  let st = Aerodrome.Basic.create ~threads:2 ~locks:0 ~vars:2 in
  Trace.iteri
    (fun i e ->
      match Aerodrome.Basic.feed st e with
      | Some v ->
        Format.printf "e%-2d %-12s -> VIOLATION (%a)@." (i + 1)
          (Event.to_string e) Aerodrome.Violation.pp_site
          v.Aerodrome.Violation.site
      | None ->
        Format.printf "e%-2d %-12s C_t1=%a C_t2=%a@." (i + 1)
          (Event.to_string e) Vclock.Vtime.pp
          (Aerodrome.Basic.thread_clock st 0)
          Vclock.Vtime.pp
          (Aerodrome.Basic.thread_clock st 1))
    rho2

let () =
  describe "rho2 (violating)" rho2;
  describe "serial (serializable)" serial;
  watch_clocks ()
