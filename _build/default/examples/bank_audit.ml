(* A bank with atomic transfers and a buggy audit.

   Each transfer is an atomic block: lock both accounts (in id order),
   move the money, unlock.  The audit sums all balances inside an atomic
   block but — the bug — without taking any locks, so transfers can slide
   between its reads: the audit is not serializable with respect to them,
   and can observe money mid-flight.

   The example simulates the bank, logs the trace a RoadRunner-style
   instrumentation would produce, and monitors it online with AeroDrome.
   The violation is reported the moment it becomes detectable, with the
   account names recovered from the trace's symbol table.

   Run with: dune exec examples/bank_audit.exe *)

open Traces

let accounts = 6
let teller_threads = 3
let auditor = teller_threads (* thread id of the auditor *)

(* Deterministic "bank day": a list of operations per thread. *)
let build_trace () =
  let b = Trace.Builder.create () in
  let rng = Workloads.Rng.create 2020L in
  (* var i = balance of account i; lock i protects account i *)
  let transfer thread =
    let src = Workloads.Rng.int rng accounts in
    let dst = (src + 1 + Workloads.Rng.int rng (accounts - 1)) mod accounts in
    let lo = min src dst and hi = max src dst in
    Trace.Builder.begin_ b thread;
    Trace.Builder.acquire b thread ~lock:lo;
    Trace.Builder.acquire b thread ~lock:hi;
    Trace.Builder.read b thread ~var:src;
    Trace.Builder.write b thread ~var:src;
    Trace.Builder.read b thread ~var:dst;
    Trace.Builder.write b thread ~var:dst;
    Trace.Builder.release b thread ~lock:hi;
    Trace.Builder.release b thread ~lock:lo;
    Trace.Builder.end_ b thread
  in
  (* The buggy audit: reads every balance with no locks.  The fixed audit
     would acquire all locks first. *)
  let audit_step = ref (-1) in
  let audit_done = ref false in
  let audit_tick () =
    if not !audit_done then
      if !audit_step < 0 then begin
        Trace.Builder.begin_ b auditor;
        audit_step := 0
      end
      else if !audit_step < accounts then begin
        Trace.Builder.read b auditor ~var:!audit_step;
        incr audit_step
      end
      else begin
        Trace.Builder.end_ b auditor;
        audit_done := true
      end
  in
  (* Interleave tellers and the audit. *)
  for round = 1 to 60 do
    let teller = Workloads.Rng.int rng teller_threads in
    transfer teller;
    if round >= 20 && round mod 3 = 0 then audit_tick ()
  done;
  while not !audit_done do
    audit_tick ()
  done;
  let names prefix n = Array.init n (fun i -> Printf.sprintf "%s%d" prefix i) in
  let symbols : Trace.Symbols.t =
    {
      threads =
        Array.init (teller_threads + 1) (fun i ->
            if i = auditor then "auditor" else Printf.sprintf "teller%d" i);
      locks = names "account_lock_" accounts;
      vars = names "balance_" accounts;
    }
  in
  Trace.Builder.build ~symbols b

let () =
  let tr = build_trace () in
  Format.printf "bank day: %d events, %d transfers and one audit@."
    (Trace.length tr)
    (Transactions.count_blocks tr - 1);
  (* Online monitoring via the high-level Monitor API: the callback fires
     the moment the violation becomes detectable, with symbolic names. *)
  let monitor =
    Aerodrome.Monitor.of_trace_domains
      ~on_violation:(fun report ->
        Format.printf "ALARM: %s@."
          (Aerodrome.Monitor.report_to_string report);
        Format.printf "  observed so far: %a@." Aerodrome.Monitor.pp_stats
          report.Aerodrome.Monitor.stats_at_detection)
      tr
  in
  ignore (Aerodrome.Monitor.observe_all monitor (Trace.to_seq tr));
  if not (Aerodrome.Monitor.violated monitor) then
    Format.printf "no violation (did you fix the audit?)@.";
  (* Cross-check with the Velodrome baseline. *)
  match Aerodrome.Checker.run (module Velodrome.Online) tr with
  | Some _ -> Format.printf "velodrome agrees: not serializable@."
  | None -> Format.printf "velodrome disagrees?!@."
