(* Working with trace files: generate a benchmark workload, write it in
   the textual .std format, parse it back, and analyze it — the same
   pipeline as the rapid CLI (bin/rapid.ml), as a library client.

   Run with: dune exec examples/trace_files.exe *)

open Traces

let () =
  (* 1. Generate a scaled-down "sunflow"-like workload (Table 1 row). *)
  let profile =
    match Workloads.Benchmarks.find "sunflow" with
    | Some p -> p
    | None -> failwith "profile missing"
  in
  let tr = Workloads.Profile.generate ~scale:0.05 profile in
  Format.printf "generated %s: %d events@." profile.name (Trace.length tr);

  (* 2. Round-trip through the on-disk format. *)
  let path = Filename.temp_file "aerodrome_example" ".std" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Parser.to_file path tr;
      Format.printf "wrote %s (%d bytes)@." path
        (let st = open_in_bin path in
         Fun.protect
           ~finally:(fun () -> close_in_noerr st)
           (fun () -> in_channel_length st));
      let tr = Parser.parse_file_exn path in

      (* 3. MetaInfo, like `rapid metainfo`. *)
      Format.printf "%a@." Analysis.Metainfo.pp (Analysis.Metainfo.analyze tr);

      (* 4. Check with both algorithms and compare, like `rapid table`. *)
      let velodrome =
        Analysis.Runner.run ~timeout:5.0 (module Velodrome.Online) tr
      in
      let aerodrome =
        Analysis.Runner.run ~timeout:5.0 (module Aerodrome.Opt) tr
      in
      Format.printf "%a@.%a@." Analysis.Runner.pp velodrome Analysis.Runner.pp
        aerodrome;
      match Analysis.Runner.speedup ~baseline:velodrome aerodrome with
      | Some s -> Format.printf "speedup (velodrome/aerodrome): %.1fx@." s
      | None -> Format.printf "both runs timed out@.")
