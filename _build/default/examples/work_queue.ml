(* A fork/join work-queue pipeline, and why long-running atomic blocks are
   risky.

   A coordinator forks worker threads, then runs one long atomic block
   that hands out job descriptors (single-assignment variables) and
   collects results.  Workers process jobs inside their own atomic blocks.
   As long as the data flows one way — coordinator publishes, workers
   consume, workers publish results to fresh cells the coordinator reads
   only after the producing worker's block ended — everything serializes.

   The bug: a worker posts a progress note into a mailbox cell that the
   coordinator polls while both blocks are still open.  Now the worker's
   block must come both after the coordinator's (it consumed a job) and
   before it (the coordinator saw its note): a cycle, reported by every
   checker.  This is the shape of the paper's avrora/lusearch rows, where
   a long-lived dispatcher transaction makes Velodrome's graph huge while
   AeroDrome stays linear.

   Run with: dune exec examples/work_queue.exe *)

open Traces

let workers = 3
let coordinator = 0
let jobs_per_worker = 8

let simulate ~progress_notes =
  let b = Trace.Builder.create () in
  let rng = Workloads.Rng.create 7L in
  (* Variable layout: one job cell and one result cell per job, plus one
     mailbox cell. *)
  let mailbox = 0 in
  let job_cell w j = 1 + (((w - 1) * jobs_per_worker) + j) in
  let result_cell w j = 1 + (workers * jobs_per_worker) + (((w - 1) * jobs_per_worker) + j) in
  (* Coordinator forks everyone and opens its long dispatch block. *)
  for w = 1 to workers do
    Trace.Builder.fork b coordinator ~child:w
  done;
  Trace.Builder.begin_ b coordinator;
  (* Publish all job descriptors. *)
  for w = 1 to workers do
    for j = 0 to jobs_per_worker - 1 do
      Trace.Builder.write b coordinator ~var:(job_cell w j)
    done
  done;
  (* Workers run; the scheduler interleaves one job-block at a time. *)
  let next_job = Array.make (workers + 1) 0 in
  let pending = ref (workers * jobs_per_worker) in
  let posted_note = ref false in
  while !pending > 0 do
    let w = 1 + Workloads.Rng.int rng workers in
    if next_job.(w) < jobs_per_worker then begin
      let j = next_job.(w) in
      next_job.(w) <- j + 1;
      decr pending;
      Trace.Builder.begin_ b w;
      Trace.Builder.read b w ~var:(job_cell w j);
      (* simulate some local work *)
      Trace.Builder.write b w ~var:(result_cell w j);
      if progress_notes && w = 1 && j = jobs_per_worker / 2 then begin
        (* the buggy progress note *)
        Trace.Builder.write b w ~var:mailbox;
        posted_note := true
      end;
      Trace.Builder.end_ b w;
      (* The coordinator polls the mailbox while dispatching. *)
      if !posted_note then begin
        Trace.Builder.read b coordinator ~var:mailbox;
        posted_note := false
      end
    end
  done;
  (* Coordinator closes its block, then reads results and joins. *)
  Trace.Builder.end_ b coordinator;
  for w = 1 to workers do
    for j = 0 to jobs_per_worker - 1 do
      Trace.Builder.read b coordinator ~var:(result_cell w j)
    done
  done;
  for w = 1 to workers do
    Trace.Builder.join b coordinator ~child:w
  done;
  Trace.Builder.build b

let report name tr =
  Format.printf "== %s (%d events, %d blocks) ==@." name (Trace.length tr)
    (Transactions.count_blocks tr);
  List.iter
    (fun (cname, checker) ->
      match Aerodrome.Checker.run checker tr with
      | None -> Format.printf "  %-10s serializable@." cname
      | Some v -> Format.printf "  %-10s %a@." cname Aerodrome.Violation.pp v)
    [
      ("aerodrome", (module Aerodrome.Opt : Aerodrome.Checker.S));
      ("velodrome", (module Velodrome.Online : Aerodrome.Checker.S));
    ];
  Format.printf "@."

let () =
  report "one-way pipeline (atomic)" (simulate ~progress_notes:false);
  report "with progress notes (violation)" (simulate ~progress_notes:true)
