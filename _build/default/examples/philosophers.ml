(* Dining philosophers, checked for atomicity.

   Each meal is an atomic block: pick up both forks (always lower id
   first, which also prevents deadlock), update both forks' "times used"
   counters, put the forks down.  Meals of different philosophers
   interleave freely — a scheduler picks a random philosopher at each step
   and emits the next event of their current meal, blocking on held forks.
   Because every counter access happens while holding the fork and each
   meal is one critical region per fork pair, the trace is conflict
   serializable — matching the ✓ of the paper's philo row in Table 1.

   A second run seats a nosy philosopher who peeks at a fork counter
   without holding the fork, at the start and end of the meal.  When
   another meal updates that counter in between, the peeking meal can no
   longer be serialized and the checkers report a violation.

   Run with: dune exec examples/philosophers.exe *)

open Traces

let philosophers = 5

let simulate ~nosy =
  let b = Trace.Builder.create () in
  let rng = Workloads.Rng.create 55L in
  let scripts = Array.make philosophers [] in
  let holder = Array.make philosophers (-1) in
  let meals = Array.make philosophers 0 in
  let plan p =
    let left = p and right = (p + 1) mod philosophers in
    let across = (p + 2) mod philosophers in
    let lo = min left right and hi = max left right in
    let peek = nosy && p = 0 in
    List.concat
      [
        [ Event.begin_ p ];
        (if peek then [ Event.read p across ] else []);
        [
          Event.acquire p lo;
          Event.acquire p hi;
          Event.read p lo;
          Event.write p lo;
          Event.read p hi;
          Event.write p hi;
          Event.release p hi;
          Event.release p lo;
        ];
        (if peek then [ Event.read p across ] else []);
        [ Event.end_ p ];
      ]
  in
  let step p =
    match scripts.(p) with
    | [] ->
      if meals.(p) < 16 then begin
        meals.(p) <- meals.(p) + 1;
        scripts.(p) <- plan p
      end
    | e :: rest -> (
      match e.Event.op with
      | Event.Acquire l when holder.(Ids.Lid.to_int l) <> -1 -> ()  (* blocked *)
      | _ ->
        (match e.Event.op with
        | Event.Acquire l -> holder.(Ids.Lid.to_int l) <- p
        | Event.Release l -> holder.(Ids.Lid.to_int l) <- -1
        | _ -> ());
        Trace.Builder.add b e;
        scripts.(p) <- rest)
  in
  let remaining () =
    Array.exists (fun s -> s <> []) scripts
    || Array.exists (fun m -> m < 16) meals
  in
  while remaining () do
    step (Workloads.Rng.int rng philosophers)
  done;
  Trace.Builder.build b

let report name tr =
  let meta = Analysis.Metainfo.analyze tr in
  Format.printf "== %s: %d events, %d meals, %d forks ==@." name meta.events
    meta.transactions meta.locks;
  List.iter
    (fun (cname, checker) ->
      let r = Analysis.Runner.run checker tr in
      Format.printf "  %-12s %a@." cname Analysis.Runner.pp r)
    [
      ("aerodrome", (module Aerodrome.Opt : Aerodrome.Checker.S));
      ("velodrome", (module Velodrome.Online : Aerodrome.Checker.S));
    ];
  Format.printf "@."

let () =
  report "disciplined table (atomic)" (simulate ~nosy:false);
  report "nosy philosopher (violation)" (simulate ~nosy:true)
