(* Analyzing traces bigger than you want in memory.

   The paper's logs reach billions of events.  This example generates a
   million-event workload, stores it in the compact binary format, and
   then analyzes it by STREAMING straight from the file — the checker is
   single-pass, so peak memory is the checker state (vector clocks sized
   by threads x variables), not the trace.

   Run with: dune exec examples/big_trace.exe *)

open Traces

let events = 1_000_000

let () =
  let path = Filename.temp_file "aerodrome_big" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* 1. Generate and store (the only phase that holds the full trace). *)
      let t0 = Unix.gettimeofday () in
      let tr =
        Workloads.Generator.generate
          {
            Workloads.Generator.default with
            events;
            threads = 8;
            locks = 8;
            vars = 400_000;
            shape = Workloads.Generator.Independent;
            plan = Workloads.Generator.Violate_at 0.95;
          }
      in
      Binfmt.write_file path tr;
      let bytes = (Unix.stat path).Unix.st_size in
      Format.printf "wrote %d events, %d bytes (%.1f bytes/event) in %.1fs@."
        (Trace.length tr) bytes
        (float_of_int bytes /. float_of_int (Trace.length tr))
        (Unix.gettimeofday () -. t0);

      (* 2. Stream-analyze from disk. *)
      let run name checker =
        let r = Analysis.Runner.run_binary_file checker path in
        Format.printf "  %-10s %a (%.1f M events/s)@." name
          Analysis.Runner.pp r
          (float_of_int r.Analysis.Runner.events_fed
          /. r.Analysis.Runner.seconds /. 1e6)
      in
      run "aerodrome" (module Aerodrome.Opt : Aerodrome.Checker.S);
      run "velodrome" (module Velodrome.Online : Aerodrome.Checker.S);

      (* 3. The header alone answers the sizing questions. *)
      let h = Binfmt.read_header path in
      Format.printf
        "header: %d threads, %d locks, %d variables, %d events@."
        h.Binfmt.threads h.Binfmt.locks h.Binfmt.vars h.Binfmt.events)
