(* Benchmark harness: regenerates the paper's Table 1 and Table 2 (scaled),
   plus two ablations (checker variants; linear-vs-superlinear scaling) and
   a Bechamel micro-benchmark of per-event cost.

   Usage: dune exec bench/main.exe -- [--table 1|2] [--scale F]
          [--timeout S] [--only NAME] [--no-micro] [--no-ablation]
          [--no-scaling] [--seed N] *)

open Traces

let fmt = Format.std_formatter

type options = {
  mutable tables : int list;
  mutable scale : float;
  mutable timeout : float;
  mutable only : string option;
  mutable micro : bool;
  mutable ablation : bool;
  mutable scaling : bool;
  mutable markdown : bool;
}

let opts =
  {
    tables = [ 1; 2 ];
    scale = 1.0;
    timeout = 5.0;
    only = None;
    micro = true;
    ablation = true;
    scaling = true;
    markdown = false;
  }

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--table" :: n :: rest ->
      opts.tables <- [ int_of_string n ];
      go rest
    | "--scale" :: f :: rest ->
      opts.scale <- float_of_string f;
      go rest
    | "--timeout" :: s :: rest ->
      opts.timeout <- float_of_string s;
      go rest
    | "--only" :: name :: rest ->
      opts.only <- Some name;
      go rest
    | "--no-micro" :: rest ->
      opts.micro <- false;
      go rest
    | "--no-ablation" :: rest ->
      opts.ablation <- false;
      go rest
    | "--no-scaling" :: rest ->
      opts.scaling <- false;
      go rest
    | "--markdown" :: rest ->
      opts.markdown <- true;
      go rest
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
  in
  go (List.tl (Array.to_list Sys.argv))

let aerodrome : Aerodrome.Checker.t = (module Aerodrome.Opt)
let velodrome : Aerodrome.Checker.t = (module Velodrome.Online)

let bench_profile (p : Workloads.Profile.t) =
  let tr = Workloads.Profile.generate ~scale:opts.scale p in
  let meta = Analysis.Metainfo.analyze tr in
  let v = Analysis.Runner.run ~timeout:opts.timeout velodrome tr in
  let a = Analysis.Runner.run ~timeout:opts.timeout aerodrome tr in
  (* Sanity: the verdict must match the profile's plan whenever the run
     completed. *)
  (match (a.outcome, Workloads.Profile.expected_violating p) with
  | Analysis.Runner.Verdict verdict, expected ->
    if Option.is_some verdict <> expected then
      Format.fprintf fmt
        "!! %s: AeroDrome verdict %s but the workload plan expects %s@."
        p.name
        (if Option.is_some verdict then "violating" else "serializable")
        (if expected then "violating" else "serializable")
  | Analysis.Runner.Timed_out, _ -> ());
  Analysis.Report.make_row ~name:p.name ~meta ~velodrome:v ~aerodrome:a
    ~timeout:opts.timeout ~paper:p.paper ()

let run_table n =
  let profiles =
    (if n = 1 then Workloads.Benchmarks.table1 else Workloads.Benchmarks.table2)
    |> List.filter (fun (p : Workloads.Profile.t) ->
           match opts.only with None -> true | Some name -> p.name = name)
  in
  if profiles <> [] then begin
    let rows = List.map bench_profile profiles in
    let title =
      if n = 1 then
        "Table 1: benchmarks with realistic atomicity specifications \
         (scaled reproduction)"
      else
        "Table 2: benchmarks with naive atomicity specifications (scaled \
         reproduction)"
    in
    Format.fprintf fmt "@.";
    if opts.markdown then Analysis.Report.render_markdown fmt ~title rows
    else begin
      Analysis.Report.render_comparison fmt ~title rows;
      Format.fprintf fmt
        "(events scaled from the paper's traces; shapes — who wins and \
         where Velodrome times out — are the reproduction target)@."
    end
  end

(* Ablation A: AeroDrome variants and Velodrome with/without GC. *)
let run_ablation () =
  let variants : (string * Aerodrome.Checker.t) list =
    [
      ("aerodrome-basic (Alg 1)", (module Aerodrome.Basic));
      ("aerodrome-reduced (Alg 2)", (module Aerodrome.Reduced));
      ("aerodrome (Alg 3)", (module Aerodrome.Opt));
      ("aerodrome slow-checks", Aerodrome.Opt.slow_checker);
      ("velodrome", velodrome);
      ("velodrome no-gc", Velodrome.Online.no_gc_checker);
      ("velodrome pearce-kelly", Velodrome.Online.pk_checker);
    ]
  in
  let workloads =
    [
      ( "independent 120K events",
        Workloads.Generator.generate
          {
            Workloads.Generator.default with
            events = int_of_float (120_000. *. opts.scale);
            threads = 8;
            locks = 8;
            vars = 50_000;
          } );
      ( "anchored 60K events",
        Workloads.Generator.generate
          {
            Workloads.Generator.default with
            events = int_of_float (60_000. *. opts.scale);
            threads = 8;
            locks = 4;
            vars = 30_000;
            shape = Workloads.Generator.Anchored;
          } );
    ]
  in
  Format.fprintf fmt
    "@.Ablation A: checker variants (times; serializable workloads so every \
     checker scans the full trace)@.";
  List.iter
    (fun (wname, tr) ->
      Format.fprintf fmt "  workload: %s (%d events)@." wname (Trace.length tr);
      List.iter
        (fun (vname, checker) ->
          let r = Analysis.Runner.run ~timeout:opts.timeout checker tr in
          let cell =
            match r.Analysis.Runner.outcome with
            | Analysis.Runner.Timed_out -> "TO"
            | Analysis.Runner.Verdict None ->
              Printf.sprintf "%8.3fs" r.seconds
            | Analysis.Runner.Verdict (Some _) ->
              Printf.sprintf "%8.3fs (violation?!)" r.seconds
          in
          Format.fprintf fmt "    %-28s %s@." vname cell)
        variants)
    workloads

(* Ablation B: runtime growth with trace length — AeroDrome stays linear,
   Velodrome grows superlinearly on the anchored shape. *)
let run_scaling () =
  let sizes =
    List.map
      (fun n -> int_of_float (float_of_int n *. opts.scale))
      [ 15_000; 30_000; 60_000; 120_000 ]
  in
  let config =
    {
      Workloads.Generator.default with
      threads = 8;
      locks = 4;
      vars = 80_000;
      shape = Workloads.Generator.Anchored;
    }
  in
  Format.fprintf fmt
    "@.Ablation B: scaling on the anchored shape (serializable traces)@.";
  Format.fprintf fmt "  %10s  %12s %14s  %12s %14s  %12s %14s@." "events"
    "aerodrome" "(ns/event)" "velodrome" "(ns/event)" "velodrome-pk"
    "(ns/event)";
  List.iter
    (fun (n, tr) ->
      let a = Analysis.Runner.run ~timeout:opts.timeout aerodrome tr in
      let v = Analysis.Runner.run ~timeout:opts.timeout velodrome tr in
      let p =
        Analysis.Runner.run ~timeout:opts.timeout Velodrome.Online.pk_checker
          tr
      in
      let cell (r : Analysis.Runner.result) =
        match r.outcome with
        | Analysis.Runner.Timed_out -> ("TO", "-")
        | Analysis.Runner.Verdict _ ->
          ( Printf.sprintf "%.3fs" r.seconds,
            Printf.sprintf "%.0f"
              (r.seconds *. 1e9 /. float_of_int (max r.events_fed 1)) )
      in
      let at, an = cell a and vt, vn = cell v and pt, pn = cell p in
      Format.fprintf fmt "  %10d  %12s %14s  %12s %14s  %12s %14s@."
        (Trace.length tr) at an vt vn pt pn;
      ignore n)
    (Workloads.Generator.scaling ~config sizes)

(* Micro-benchmark: per-event cost of the streaming checkers (Bechamel). *)
let run_micro () =
  let open Bechamel in
  let tr =
    Workloads.Generator.generate
      {
        Workloads.Generator.default with
        events = 20_000;
        threads = 6;
        locks = 4;
        vars = 10_000;
      }
  in
  let feed_all (module C : Aerodrome.Checker.S) () =
    ignore (Aerodrome.Checker.run (module C) tr)
  in
  let test =
    Test.make_grouped ~name:"full-run/20K-events"
      [
        Test.make ~name:"aerodrome"
          (Staged.stage (feed_all (module Aerodrome.Opt)));
        Test.make ~name:"aerodrome-reduced"
          (Staged.stage (feed_all (module Aerodrome.Reduced)));
        Test.make ~name:"aerodrome-basic"
          (Staged.stage (feed_all (module Aerodrome.Basic)));
        Test.make ~name:"velodrome"
          (Staged.stage (feed_all (module Velodrome.Online)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Format.fprintf fmt
    "@.Micro-benchmark: one full 20K-event analysis run (Bechamel OLS)@.";
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) results [] in
  List.iter
    (fun name ->
      let est = Hashtbl.find results name in
      match Analyze.OLS.estimates est with
      | Some (t :: _) ->
        Format.fprintf fmt "  %-40s %10.2f ms/run  %6.1f ns/event@." name
          (t /. 1e6)
          (t /. 20_000.)
      | _ -> Format.fprintf fmt "  %-40s (no estimate)@." name)
    (List.sort String.compare names)

let () =
  parse_args ();
  Format.fprintf fmt
    "AeroDrome reproduction benchmarks (scale %.2f, timeout %.1fs)@."
    opts.scale opts.timeout;
  List.iter run_table opts.tables;
  if opts.ablation && opts.only = None then run_ablation ();
  if opts.scaling && opts.only = None then run_scaling ();
  if opts.micro && opts.only = None then run_micro ();
  Format.pp_print_flush fmt ()
